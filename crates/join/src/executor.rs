//! The batch-parallel uncertain θ-join executor.
//!
//! ## Execution shape
//!
//! MC joins are embarrassingly parallel: one batch over the filtered
//! cross product, exactly the hand-built Q2 construction.
//!
//! GP joins run **two rounds** so one warm model amortizes across all
//! O(n²) pairs:
//!
//! 1. **warmup** — [`warmup_indices`] picks a small, evenly-strided,
//!    deterministic subset of the pair enumeration (the stride is what
//!    matters: a prefix would only cover one left tuple's slice) and
//!    runs it *sequentially through the full Algorithm 5 path*
//!    ([`Executor::select_seeded`](udf_query::Executor::select_seeded)):
//!    each warmup pair tunes the model before the next is judged, so no
//!    pair is ever ruled by the raw bootstrap model — a cold frozen model
//!    (near-duplicate training cluster, ill-conditioned α) can
//!    spuriously filter arbitrarily many pairs in a batch fast phase;
//! 2. **main** — every remaining pair runs in one two-phase
//!    [`Executor::select_batch_indexed`](udf_query::Executor::select_batch_indexed)
//!    batch whose fast phase reads the now-warm frozen model, so most
//!    pairs are served read-only in parallel instead of rerouting
//!    through the sequential slow path.
//!
//! Both rounds seed every pair from its *global* enumeration index, so
//! RNG streams, emitted `source` ids, and fold positions are independent
//! of worker count — and a hand-built construction over the materialized
//! cross product reproduces the join byte-for-byte (pinned by
//! `tests/parity.rs`).
//!
//! With pruning enabled, the main round first runs the
//! [`PairPruner`] pre-pass against the
//! post-warmup model: pairs whose envelope certificate proves `ρ_U = 0`
//! are dropped *without per-sample inference* — provably the same pairs
//! the main batch's accept hook would have filtered, so pruning on/off
//! is byte-identical while evaluating measurably fewer pairs.

use crate::prune::{coverage_radius, pair_input, PairPruner};
use crate::spec::JoinSpec;
use crate::{JoinError, Result};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;
use udf_core::filtering::EnvelopeDecision;
use udf_core::output::OutputDistribution;
use udf_core::sched::{BatchScheduler, BatchStats};
use udf_obs::{Histogram, MetricsRegistry, TraceBuffer, TraceEvent, TracePhase};
use udf_prob::InputDistribution;
use udf_query::{EvalStrategy, Executor, ProjectedTuple, QueryStats, Relation, Schema, UdfCall};

/// The join executor's observability handles. Purely observational:
/// pruning decisions, RNG streams, and emitted rows are identical whether
/// or not these record (pinned by the determinism tests).
#[derive(Clone, Debug)]
pub struct JoinMetrics {
    /// Sequential warmup-round wall time (whole round).
    pub warmup_ns: Histogram,
    /// Main two-phase batch wall time (whole batch).
    pub main_ns: Histogram,
    /// R-tree screen time, per left tuple ([`PairPruner::attempts`]).
    pub screen_ns: Histogram,
    /// Exact envelope-certificate time, per attempted pair
    /// ([`PairPruner::certify_pair`]).
    pub certify_ns: Histogram,
}

impl JoinMetrics {
    /// No-op handles (what an un-wired executor holds).
    pub fn disabled() -> Self {
        JoinMetrics {
            warmup_ns: Histogram::disabled(),
            main_ns: Histogram::disabled(),
            screen_ns: Histogram::disabled(),
            certify_ns: Histogram::disabled(),
        }
    }

    /// Register the `join.*` handles in `reg`.
    pub fn register(reg: &MetricsRegistry) -> Self {
        JoinMetrics {
            warmup_ns: reg.histogram("join.warmup_ns"),
            main_ns: reg.histogram("join.main_ns"),
            screen_ns: reg.histogram("join.screen_ns"),
            certify_ns: reg.histogram("join.certify_ns"),
        }
    }
}

/// Warmup-round size for GP joins: enough strided pairs to train the
/// model across the input space, few enough that the sequential warmup
/// stays a vanishing fraction of O(n²) pair evaluations.
pub const WARMUP_PAIRS: usize = 32;

/// The deterministic warmup subset for a join of `total` candidate pairs:
/// [`WARMUP_PAIRS`] indices evenly strided over `0..total` (all of them
/// when `total` is small). Strictly increasing and duplicate-free.
pub fn warmup_indices(total: usize) -> Vec<usize> {
    if total <= WARMUP_PAIRS {
        return (0..total).collect();
    }
    let mut out: Vec<usize> = (0..WARMUP_PAIRS)
        .map(|k| k * total / WARMUP_PAIRS)
        .collect();
    out.dedup();
    out
}

/// Join-level counters (the per-pair evaluation counters ride along from
/// the two-phase scheduler and the executor's [`QueryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Candidate pairs after the `ON` filter.
    pub pairs_generated: u64,
    /// Pairs skipped by the exact envelope certificate — no per-sample
    /// inference, no UDF calls, provably no output change.
    pub pairs_pruned: u64,
    /// Exact certificates attempted (the R-tree screen's hit count).
    pub prune_attempts: u64,
    /// Pairs the certificate proved *certainly kept* (`ρ_L = 1 ≥ θ`);
    /// they are still evaluated to produce their output distribution.
    pub certain_accepts: u64,
    /// Pairs fully served by the parallel read-only fast path.
    pub fast_path: u64,
    /// Pairs that took the sequential model-mutating slow path.
    pub slow_path: u64,
    /// Pairs dropped by the §5.5 accept-hook filter (after evaluation).
    pub filtered: u64,
    /// Output rows.
    pub pairs_kept: u64,
    /// Degraded acceptances under the model cap.
    pub cap_hits: u64,
    /// UDF invocations across the whole join.
    pub udf_calls: u64,
}

impl JoinStats {
    /// Pairs that went through MC/GP evaluation (generated − pruned).
    pub fn pairs_evaluated(&self) -> u64 {
        self.pairs_generated - self.pairs_pruned
    }

    fn absorb(&mut self, b: BatchStats) {
        self.fast_path += b.fast_path as u64;
        self.slow_path += b.slow_path as u64;
        self.filtered += b.filtered as u64;
    }
}

impl fmt::Display for JoinStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let line = udf_obs::fmt::KvLine::new()
            .field("pairs_generated", self.pairs_generated)
            .field("pairs_pruned", self.pairs_pruned)
            .field("pairs_kept", self.pairs_kept)
            .field("fast", self.fast_path)
            .field("slow", self.slow_path)
            .field("filtered", self.filtered)
            .field("cap_hits", self.cap_hits)
            .field("udf_calls", self.udf_calls);
        f.write_str(&line.finish())
    }
}

/// One surviving joined pair.
#[derive(Debug, Clone)]
pub struct JoinedPair {
    /// Global pair index (position in the `ON`-filtered enumeration —
    /// identical to the row index a materialized
    /// [`Relation::cross_join`](udf_query::Relation::cross_join) would
    /// assign).
    pub pair: usize,
    /// Left source-tuple index.
    pub left: usize,
    /// Right source-tuple index.
    pub right: usize,
    /// The pair UDF's output distribution.
    pub output: OutputDistribution,
    /// Tuple-existence probability estimate.
    pub tep: f64,
}

/// What a join run produced.
#[derive(Debug)]
pub struct JoinOutput {
    /// The joined relation of *kept* pairs (prefixed schema), in pair
    /// order.
    pub relation: Relation,
    /// Per-pair outputs aligned with [`relation`](JoinOutput::relation)'s
    /// tuples.
    pub rows: Vec<JoinedPair>,
    /// Join-level counters.
    pub stats: JoinStats,
    /// The inner executor's counters (tuples in/out there count
    /// *evaluated* pairs — pruned pairs never reach it).
    pub query_stats: QueryStats,
}

/// How many left tuples each streamed pre-pass block covers (bounds the
/// pruned path's transient memory at `block × right.len()` decisions).
const LEFT_BLOCK: usize = 64;

/// Rows plus the pair-index → `(left, right)` coordinate map the
/// execution paths hand back to [`JoinExecutor::run`].
type RowsAndCoords = (Vec<ProjectedTuple>, BTreeMap<usize, (usize, usize)>);

/// Post-warmup snapshot of a GP join: the warmed inner executor (model,
/// cached factors, accumulated stats) plus the warmup round's surviving
/// rows and stat contributions. Re-executing a prepared join clones this
/// instead of re-running the sequential warmup — the main round starts
/// from identical model state and identical per-pair seeds, so the output
/// is byte-identical to a cold run while the re-execution emits no
/// `Warmup` trace phase and mutates no shared state.
#[derive(Clone, Debug)]
pub struct WarmJoinState {
    executor: Executor,
    rows: Vec<ProjectedTuple>,
    warm_count: u64,
}

/// How a run treats the GP warmup round.
#[derive(Debug, Default)]
pub enum WarmMode<'w> {
    /// Run the warmup round normally and keep nothing (one-shot).
    #[default]
    Cold,
    /// Run the warmup round, then snapshot the post-warmup state for
    /// later [`Restore`](WarmMode::Restore) runs. MC joins have no
    /// warmup round and capture nothing.
    Capture,
    /// Skip the warmup round: clone the snapshot's executor and splice
    /// in its warmup rows, then run only the main round. Behaves like
    /// [`Cold`](WarmMode::Cold) on joins without a warmup round.
    Restore(&'w WarmJoinState),
}

/// Executes one [`JoinSpec`] — see the [module docs](self) for the
/// two-round shape and the pruning contract.
pub struct JoinExecutor<'s, 'a> {
    spec: &'s JoinSpec<'a>,
    schema: Schema,
    call: UdfCall,
    executor: Executor,
    metrics: JoinMetrics,
    registry: Option<MetricsRegistry>,
    tracer: TraceBuffer,
}

impl<'s, 'a> JoinExecutor<'s, 'a> {
    /// Validate the spec and build the inner pair executor.
    pub fn new(spec: &'s JoinSpec<'a>) -> Result<Self> {
        if spec.prune {
            if spec.strategy != EvalStrategy::Gp {
                return Err(JoinError::InvalidSpec(
                    "envelope pruning requires the GP strategy (MC has no band to bound)"
                        .to_string(),
                ));
            }
            if spec.predicate.is_none() {
                return Err(JoinError::InvalidSpec(
                    "envelope pruning requires a PR predicate to rule on".to_string(),
                ));
            }
        }
        let schema = spec.joined_schema()?;
        let qualified = spec.qualified_args();
        let names: Vec<&str> = qualified.iter().map(String::as_str).collect();
        let call = UdfCall::resolve(spec.udf.clone(), &schema, &names)?;
        let mut executor = Executor::new(spec.strategy, spec.accuracy, &call, spec.output_range)?
            .with_model_cap(spec.model_cap, spec.budget())?;
        if let Some(n) = spec.tuning_budget {
            executor = executor.with_tuning_budget(n)?;
        }
        Ok(JoinExecutor {
            spec,
            schema,
            call,
            executor,
            metrics: JoinMetrics::disabled(),
            registry: None,
            tracer: TraceBuffer::disabled(),
        })
    }

    /// Wire observability: the `join.*` phase timers plus the inner
    /// executor's model handles (`olgapro.*`) register in `reg`.
    #[must_use]
    pub fn with_metrics(mut self, reg: &MetricsRegistry) -> Self {
        self.metrics = JoinMetrics::register(reg);
        self.registry = Some(reg.clone());
        self.executor = self.executor.with_metrics(reg);
        self
    }

    /// Wire structured tracing: the join brackets its warmup/main rounds
    /// with [`TracePhase`] events, attributes every attempted-but-undecided
    /// certificate as a [`TraceEvent::CertifyFail`] with its `bound_gap`,
    /// and shares the buffer with the inner executor's model so
    /// `ModelGrow`/`ModelEvict`/`CapHit` carry through. Purely
    /// observational — results are byte-identical wired or not.
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceBuffer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// In-place variant of [`with_tracer`](Self::with_tracer).
    pub fn set_tracer(&mut self, tracer: TraceBuffer) {
        self.executor.set_tracer(&tracer);
        self.tracer = tracer;
    }

    /// The inner executor's counters so far.
    pub fn query_stats(&self) -> QueryStats {
        self.executor.stats()
    }

    /// Run the join on `sched`'s worker pool.
    pub fn run(&mut self, sched: &BatchScheduler) -> Result<JoinOutput> {
        Ok(self.run_warm(sched, WarmMode::Cold)?.0)
    }

    /// Run the join with explicit warm-state handling: under
    /// [`WarmMode::Capture`] a GP join also returns its post-warmup
    /// [`WarmJoinState`]; under [`WarmMode::Restore`] the warmup round is
    /// skipped in favor of the snapshot. Every mode produces byte-identical
    /// output (pinned by the prepared-statement digest tests).
    pub fn run_warm(
        &mut self,
        sched: &BatchScheduler,
        mode: WarmMode<'_>,
    ) -> Result<(JoinOutput, Option<WarmJoinState>)> {
        let spec = self.spec;
        let (nl, nr) = (spec.left.len(), spec.right.len());
        let cross = (nl as u64).checked_mul(nr as u64);
        if cross.is_none_or(|p| p > u32::MAX as u64) {
            return Err(JoinError::Query(udf_query::QueryError::JoinTooLarge {
                left: nl,
                right: nr,
            }));
        }
        let mut stats = JoinStats::default();
        let mut snapshot = None;
        let (mut rows, pair_of) = match (spec.strategy, spec.prune) {
            (EvalStrategy::Mc, _) | (EvalStrategy::Gp, false) => {
                self.run_materialized(sched, &mut stats, &mode, &mut snapshot)?
            }
            (EvalStrategy::Gp, true) => self.run_pruned(sched, &mut stats, &mode, &mut snapshot)?,
        };
        rows.sort_by_key(|r| r.source);

        let q = self.executor.stats();
        stats.udf_calls = q.udf_calls;
        stats.cap_hits = q.cap_hits;
        stats.pairs_kept = rows.len() as u64;

        let mut tuples = Vec::with_capacity(rows.len());
        let mut joined = Vec::with_capacity(rows.len());
        for row in rows {
            let (i, j) = *pair_of
                .get(&row.source)
                .expect("every emitted row's pair index was enumerated");
            tuples.push(spec.left.tuples()[i].concat(&spec.right.tuples()[j]));
            joined.push(JoinedPair {
                pair: row.source,
                left: i,
                right: j,
                output: row.output,
                tep: row.tep,
            });
        }
        Ok((
            JoinOutput {
                relation: Relation::new(self.schema.clone(), tuples)?,
                rows: joined,
                stats,
                query_stats: q,
            },
            snapshot,
        ))
    }

    /// Materialized path (MC, and GP without pruning): filtered cross
    /// product via [`Relation::cross_join`], then one batch (MC) or the
    /// warmup + main rounds (GP) over it.
    fn run_materialized(
        &mut self,
        sched: &BatchScheduler,
        stats: &mut JoinStats,
        mode: &WarmMode<'_>,
        snapshot: &mut Option<WarmJoinState>,
    ) -> Result<RowsAndCoords> {
        let spec = self.spec;
        let pairs_rel =
            spec.left
                .cross_join(&spec.left_prefix, spec.right, &spec.right_prefix, |i, j| {
                    spec.keep(i, j)
                })?;
        let total = pairs_rel.len();
        stats.pairs_generated = total as u64;
        let mut pair_of = BTreeMap::new();
        let mut idx = 0usize;
        for i in 0..spec.left.len() {
            for j in 0..spec.right.len() {
                if spec.keep(i, j) {
                    pair_of.insert(idx, (i, j));
                    idx += 1;
                }
            }
        }
        let inputs: Vec<(usize, InputDistribution)> = pairs_rel
            .tuples()
            .iter()
            .map(|t| self.call.input_distribution(t))
            .enumerate()
            .map(|(k, d)| d.map(|d| (k, d)))
            .collect::<udf_query::Result<_>>()?;
        let mut rows = Vec::new();
        let main = match spec.strategy {
            EvalStrategy::Mc => inputs,
            EvalStrategy::Gp => {
                let mut rounds = split_rounds(inputs, &warmup_indices(total));
                let main = rounds.pop().expect("split_rounds returns two rounds");
                let warm = rounds.pop().expect("split_rounds returns two rounds");
                self.warmup_or_restore(&warm, stats, mode, snapshot, &mut rows)?;
                main
            }
        };
        if !main.is_empty() {
            let _main_span = self.metrics.main_ns.span();
            self.tracer.emit(
                0,
                TraceEvent::PhaseStart {
                    phase: TracePhase::Main,
                },
            );
            let (r, b) = match &spec.predicate {
                Some(pred) => self
                    .executor
                    .select_batch_indexed(&main, pred, sched, spec.seed)?,
                None => self
                    .executor
                    .project_batch_indexed(&main, sched, spec.seed)?,
            };
            self.tracer.emit(
                0,
                TraceEvent::PhaseEnd {
                    phase: TracePhase::Main,
                },
            );
            stats.absorb(b);
            rows.extend(r);
        }
        Ok((rows, pair_of))
    }

    /// The pruned path: warmup round, then a streamed pre-pass that
    /// certifies rejectable pairs from band bounds over their sample
    /// boxes, then one two-phase batch over the survivors. The joined
    /// relation is never materialized for pruned pairs.
    fn run_pruned(
        &mut self,
        sched: &BatchScheduler,
        stats: &mut JoinStats,
        mode: &WarmMode<'_>,
        snapshot: &mut Option<WarmJoinState>,
    ) -> Result<RowsAndCoords> {
        let spec = self.spec;
        let pred = spec.predicate.expect("validated in new()");
        let (nl, nr) = (spec.left.len(), spec.right.len());

        // Enumeration offsets: the global index of left tuple i's first
        // candidate pair (pair indices must match the materialized
        // enumeration exactly — they seed the per-pair RNGs).
        let mut offsets = Vec::with_capacity(nl);
        let mut total = 0usize;
        for i in 0..nl {
            offsets.push(total);
            total += (0..nr).filter(|&j| spec.keep(i, j)).count();
        }
        stats.pairs_generated = total as u64;
        let mut pair_of = BTreeMap::new();
        let mut rows = Vec::new();
        if total == 0 {
            return Ok((rows, pair_of));
        }

        // Warmup round: strided pairs train the model across the input
        // space before anything is certified against it. (On restore the
        // coordinate pass still runs — pair indices must map to (i, j) —
        // but no pair is evaluated.)
        let warm = warmup_indices(total);
        let warm_inputs = self.collect_pairs(&warm, &mut pair_of)?;
        self.warmup_or_restore(&warm_inputs, stats, mode, snapshot, &mut rows)?;
        let in_warmup = |idx: usize| warm.binary_search(&idx).is_ok();

        // Main-round pre-pass: R-tree screen + exact certificates, in
        // parallel on the same pool, everything read-only against the
        // frozen post-warmup model.
        let pruner = PairPruner::new(spec);
        let metrics = &self.metrics;
        let tracer = &self.tracer;
        let olga = self.executor.olgapro().expect("pruning requires GP");
        let coverage = coverage_radius(olga);
        let mut survivors: Vec<(usize, InputDistribution)> = Vec::new();
        for block_start in (0..nl).step_by(LEFT_BLOCK) {
            let block_len = LEFT_BLOCK.min(nl - block_start);
            #[allow(clippy::needless_range_loop)] // j drives keep() and attempt[] in lockstep
            let decisions = sched.try_map_indexed(block_len, |worker, b| -> Result<_> {
                let i = block_start + b;
                let t_screen = metrics.screen_ns.enabled().then(Instant::now);
                let attempt = pruner.attempts(spec, i, olga, &pred, coverage);
                if let Some(t0) = t_screen {
                    metrics.screen_ns.record_duration(t0.elapsed());
                }
                let mut out = Vec::new();
                let mut idx = offsets[i];
                for j in 0..nr {
                    if !spec.keep(i, j) {
                        continue;
                    }
                    let this = idx;
                    idx += 1;
                    if in_warmup(this) {
                        continue;
                    }
                    if attempt[j] {
                        let t_cert = metrics.certify_ns.enabled().then(Instant::now);
                        let (decision, gap, input) =
                            pruner.certify_pair(spec, olga, &pred, i, j, this)?;
                        if let Some(t0) = t_cert {
                            metrics.certify_ns.record_duration(t0.elapsed());
                        }
                        if decision == EnvelopeDecision::Undecided {
                            // Attempted but unprovable: attribute the miss
                            // with how far the bracket was from certifying.
                            tracer.emit(
                                worker,
                                TraceEvent::CertifyFail {
                                    pair: (i as u32, j as u32),
                                    bound_gap: gap,
                                },
                            );
                        }
                        out.push((this, j, true, decision, Some(input)));
                    } else {
                        out.push((this, j, false, EnvelopeDecision::Undecided, None));
                    }
                }
                Ok(out)
            })?;
            for (b, per_left) in decisions.into_iter().enumerate() {
                let i = block_start + b;
                for (idx, j, attempted, decision, input) in per_left? {
                    if attempted {
                        stats.prune_attempts += 1;
                    }
                    match decision {
                        EnvelopeDecision::DefiniteReject => {
                            stats.pairs_pruned += 1;
                            continue;
                        }
                        EnvelopeDecision::DefiniteAccept => stats.certain_accepts += 1,
                        EnvelopeDecision::Undecided => {}
                    }
                    pair_of.insert(idx, (i, j));
                    let input = match input {
                        Some(d) => d,
                        None => pair_input(spec, i, j)?,
                    };
                    survivors.push((idx, input));
                }
            }
        }

        if !survivors.is_empty() {
            let _main_span = self.metrics.main_ns.span();
            self.tracer.emit(
                0,
                TraceEvent::PhaseStart {
                    phase: TracePhase::Main,
                },
            );
            let (r, b) = self
                .executor
                .select_batch_indexed(&survivors, &pred, sched, spec.seed)?;
            self.tracer.emit(
                0,
                TraceEvent::PhaseEnd {
                    phase: TracePhase::Main,
                },
            );
            stats.absorb(b);
            rows.extend(r);
        }
        Ok((rows, pair_of))
    }

    /// Run the warmup round per `mode`: evaluate it (snapshotting the
    /// post-warmup state under [`WarmMode::Capture`]), or splice in a
    /// snapshot's executor and rows under [`WarmMode::Restore`] — no
    /// `Warmup` trace phase, no model mutation, identical downstream
    /// state.
    fn warmup_or_restore(
        &mut self,
        warm: &[(usize, InputDistribution)],
        stats: &mut JoinStats,
        mode: &WarmMode<'_>,
        snapshot: &mut Option<WarmJoinState>,
        rows: &mut Vec<ProjectedTuple>,
    ) -> Result<()> {
        if let WarmMode::Restore(state) = mode {
            // The snapshot's executor was wired to the capturing run's
            // observability; re-wire the clone to this run's registry and
            // tracer so re-executions report where they actually run.
            let mut executor = state.executor.clone();
            if let Some(reg) = &self.registry {
                executor = executor.with_metrics(reg);
            }
            executor.set_tracer(&self.tracer);
            self.executor = executor;
            rows.extend(state.rows.iter().cloned());
            stats.slow_path += state.warm_count;
            stats.filtered += state.warm_count - state.rows.len() as u64;
            return Ok(());
        }
        let r = self.warmup(warm, stats)?;
        if matches!(mode, WarmMode::Capture) {
            *snapshot = Some(WarmJoinState {
                executor: self.executor.clone(),
                rows: r.clone(),
                warm_count: warm.len() as u64,
            });
        }
        rows.extend(r);
        Ok(())
    }

    /// The GP warmup round: sequential full-path evaluation of the
    /// strided pairs (see the [module docs](self) for why this must not
    /// be a batch). Warmup pairs count as slow-path work; drops are
    /// filter decisions like any other.
    fn warmup(
        &mut self,
        warm: &[(usize, InputDistribution)],
        stats: &mut JoinStats,
    ) -> Result<Vec<ProjectedTuple>> {
        let spec = self.spec;
        let _warmup_span = self.metrics.warmup_ns.span();
        self.tracer.emit(
            0,
            TraceEvent::PhaseStart {
                phase: TracePhase::Warmup,
            },
        );
        let rows = self
            .executor
            .select_seeded(warm, spec.predicate.as_ref(), spec.seed)?;
        self.tracer.emit(
            0,
            TraceEvent::PhaseEnd {
                phase: TracePhase::Warmup,
            },
        );
        stats.slow_path += warm.len() as u64;
        stats.filtered += (warm.len() - rows.len()) as u64;
        Ok(rows)
    }

    /// Resolve a sorted list of global pair indices to `(idx, input)`
    /// pairs in one enumeration pass, recording their coordinates.
    fn collect_pairs(
        &self,
        wanted: &[usize],
        pair_of: &mut BTreeMap<usize, (usize, usize)>,
    ) -> Result<Vec<(usize, InputDistribution)>> {
        let spec = self.spec;
        let mut out = Vec::with_capacity(wanted.len());
        let mut next = 0usize;
        let mut idx = 0usize;
        'outer: for i in 0..spec.left.len() {
            for j in 0..spec.right.len() {
                if !spec.keep(i, j) {
                    continue;
                }
                if next < wanted.len() && wanted[next] == idx {
                    pair_of.insert(idx, (i, j));
                    out.push((idx, pair_input(spec, i, j)?));
                    next += 1;
                    if next == wanted.len() {
                        break 'outer;
                    }
                }
                idx += 1;
            }
        }
        Ok(out)
    }
}

/// Split an indexed input list into `[warmup, main]` rounds by global
/// pair index (`warm` must be sorted, as [`warmup_indices`] returns).
fn split_rounds(
    inputs: Vec<(usize, InputDistribution)>,
    warm: &[usize],
) -> Vec<Vec<(usize, InputDistribution)>> {
    let mut a = Vec::with_capacity(warm.len());
    let mut b = Vec::with_capacity(inputs.len().saturating_sub(warm.len()));
    for (idx, input) in inputs {
        if warm.binary_search(&idx).is_ok() {
            a.push((idx, input));
        } else {
            b.push((idx, input));
        }
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_indices_are_strided_and_complete() {
        assert_eq!(warmup_indices(0), Vec::<usize>::new());
        assert_eq!(warmup_indices(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(
            warmup_indices(WARMUP_PAIRS),
            (0..WARMUP_PAIRS).collect::<Vec<_>>()
        );
        let w = warmup_indices(1000);
        assert_eq!(w.len(), WARMUP_PAIRS);
        assert_eq!(w[0], 0);
        assert!(w.windows(2).all(|p| p[0] < p[1]), "strictly increasing");
        assert_eq!(
            *w.last().unwrap(),
            (WARMUP_PAIRS - 1) * 1000 / WARMUP_PAIRS,
            "covers the tail"
        );
        // Strides actually spread: no prefix clumping.
        assert!(w[1] >= 1000 / WARMUP_PAIRS);
    }
}
