//! Join acceptance: the executor must be *indistinguishable* from the
//! hand-built Q2 construction over the materialized cross product, and
//! envelope pruning must change no output while provably skipping pairs.

use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_join::executor::warmup_indices;
use udf_join::{JoinError, JoinExecutor, JoinSpec, JoinedPair, Side};
use udf_prob::InputDistribution;
use udf_query::{EvalStrategy, Executor, ProjectedTuple, Relation, Schema, Tuple, UdfCall, Value};
use udf_workloads::UdfCatalog;

/// The galaxy table both sides join: deterministic objID keys (= tuple
/// index) and Gaussian-uncertain redshifts over the catalog regime.
fn galaxies(n: usize) -> Relation {
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / n as f64,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn angdist_spec<'a>(
    g: &'a Relation,
    strategy: EvalStrategy,
    prune: bool,
    seed: u64,
) -> (JoinSpec<'a>, Predicate) {
    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let pred = Predicate::new(0.3, 0.36, 0.5).unwrap();
    let spec = JoinSpec::new(
        g,
        "a",
        g,
        "b",
        entry.udf.clone(),
        &[(Side::Left, "z"), (Side::Right, "z")],
        accuracy,
        entry.output_range,
    )
    .unwrap()
    .on_less_than("objID", "objID")
    .unwrap()
    .predicate(pred)
    .strategy(strategy)
    .prune(prune)
    .seed(seed);
    (spec, pred)
}

/// The hand-built Q2 construction the executor must reproduce exactly:
/// materialized `cross_join` + the public batch APIs of `udf_query`, with
/// the GP warmup/main round split documented by [`warmup_indices`].
fn hand_built(
    g: &Relation,
    strategy: EvalStrategy,
    pred: &Predicate,
    workers: usize,
    seed: u64,
) -> Vec<ProjectedTuple> {
    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let pairs = g.cross_join("a", g, "b", |i, j| i < j).unwrap();
    let call = UdfCall::resolve(entry.udf.clone(), pairs.schema(), &["a.z", "b.z"]).unwrap();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let mut ex = Executor::new(strategy, accuracy, &call, entry.output_range).unwrap();
    let sched = BatchScheduler::new(workers);
    let inputs: Vec<(usize, InputDistribution)> = pairs
        .tuples()
        .iter()
        .enumerate()
        .map(|(k, t)| (k, call.input_distribution(t).unwrap()))
        .collect();
    let mut rows = Vec::new();
    match strategy {
        EvalStrategy::Mc => {
            let (r, _) = ex
                .select_batch_indexed(&inputs, pred, &sched, seed)
                .unwrap();
            rows.extend(r);
        }
        EvalStrategy::Gp => {
            // Sequential full-path warmup over the strided subset, then
            // one two-phase batch over the remainder.
            let warm = warmup_indices(inputs.len());
            let (a, b): (Vec<_>, Vec<_>) = inputs
                .into_iter()
                .partition(|(k, _)| warm.binary_search(k).is_ok());
            rows.extend(ex.select_seeded(&a, Some(pred), seed).unwrap());
            let (r, _) = ex.select_batch_indexed(&b, pred, &sched, seed).unwrap();
            rows.extend(r);
        }
    }
    rows.sort_by_key(|r| r.source);
    rows
}

fn assert_rows_identical(join: &[JoinedPair], hand: &[ProjectedTuple], label: &str) {
    assert_eq!(join.len(), hand.len(), "{label}: row counts differ");
    for (a, b) in join.iter().zip(hand) {
        assert_eq!(a.pair, b.source, "{label}: pair index");
        assert_eq!(
            a.tep.to_bits(),
            b.tep.to_bits(),
            "{label}: pair {} TEP",
            a.pair
        );
        assert_eq!(
            a.output.error_bound.to_bits(),
            b.output.error_bound.to_bits(),
            "{label}: pair {} error bound",
            a.pair
        );
        assert_eq!(
            a.output.ecdf, b.output.ecdf,
            "{label}: pair {} distribution",
            a.pair
        );
    }
}

/// JoinExecutor ≡ hand-built cross_join + batch executor, MC and GP, for
/// workers 1/2/8 (the acceptance criterion).
#[test]
fn join_matches_hand_built_q2_construction() {
    let g = galaxies(12); // 66 ordered pairs
    for strategy in [EvalStrategy::Mc, EvalStrategy::Gp] {
        for workers in [1usize, 2, 8] {
            let (spec, pred) = angdist_spec(&g, strategy, false, 7);
            let sched = BatchScheduler::new(workers);
            let out = JoinExecutor::new(&spec).unwrap().run(&sched).unwrap();
            let hand = hand_built(&g, strategy, &pred, workers, 7);
            let label = format!("{strategy:?}/workers={workers}");
            assert!(
                !out.rows.is_empty() && (out.rows.len() as u64) < out.stats.pairs_generated,
                "{label}: selection should keep some but not all pairs, kept {}",
                out.rows.len()
            );
            assert_rows_identical(&out.rows, &hand, &label);
            assert_eq!(out.stats.pairs_generated, 66, "{label}");
            assert_eq!(out.relation.len(), out.rows.len(), "{label}");
            // The joined relation carries the concatenated source tuples.
            for (row, tuple) in out.rows.iter().zip(out.relation.tuples()) {
                assert_eq!(tuple.value(0).mean(), row.left as f64, "{label}: a.objID");
                assert_eq!(tuple.value(2).mean(), row.right as f64, "{label}: b.objID");
            }
        }
    }
}

/// Envelope pruning must change no output byte while skipping pairs, for
/// every worker count.
#[test]
fn pruning_changes_no_output_and_prunes_pairs() {
    let g = galaxies(24); // 276 ordered pairs
    let mut reference: Option<Vec<JoinedPair>> = None;
    for workers in [1usize, 2, 8] {
        let (off_spec, _) = angdist_spec(&g, EvalStrategy::Gp, false, 9);
        let (on_spec, _) = angdist_spec(&g, EvalStrategy::Gp, true, 9);
        let sched = BatchScheduler::new(workers);
        let off = JoinExecutor::new(&off_spec).unwrap().run(&sched).unwrap();
        let on = JoinExecutor::new(&on_spec).unwrap().run(&sched).unwrap();
        let label = format!("workers={workers}");

        assert_eq!(off.rows.len(), on.rows.len(), "{label}: kept counts");
        for (a, b) in off.rows.iter().zip(&on.rows) {
            assert_eq!(a.pair, b.pair, "{label}");
            assert_eq!(a.tep.to_bits(), b.tep.to_bits(), "{label}: pair {}", a.pair);
            assert_eq!(
                a.output.error_bound.to_bits(),
                b.output.error_bound.to_bits(),
                "{label}: pair {}",
                a.pair
            );
            assert_eq!(a.output.ecdf, b.output.ecdf, "{label}: pair {}", a.pair);
        }
        assert!(
            on.stats.pairs_pruned > 0,
            "{label}: warm model never pruned a pair"
        );
        assert!(
            on.stats.pairs_evaluated() < off.stats.pairs_evaluated(),
            "{label}: pruning must evaluate fewer pairs"
        );
        assert_eq!(
            off.stats.pairs_pruned, 0,
            "{label}: prune-off counted prunes"
        );
        // Pruned pairs are exactly fast-path filter decisions skipped early.
        assert_eq!(
            off.stats.filtered,
            on.stats.filtered + on.stats.pairs_pruned,
            "{label}: pruned + filtered must cover the same pairs"
        );
        // UDF call accounting unchanged: pruning skips only inference.
        assert_eq!(off.stats.udf_calls, on.stats.udf_calls, "{label}");

        match &reference {
            None => reference = Some(on.rows),
            Some(want) => {
                assert_eq!(want.len(), on.rows.len(), "{label}: cross-worker");
                for (a, b) in want.iter().zip(&on.rows) {
                    assert_eq!(a.output.ecdf, b.output.ecdf, "{label}: cross-worker");
                }
            }
        }
    }
}

/// MC joins over the same spec agree with cross_join + select_batch (the
/// original single-batch construction — MC has no warmup).
#[test]
fn mc_join_has_no_warmup_rounds() {
    let g = galaxies(10);
    let (spec, pred) = angdist_spec(&g, EvalStrategy::Mc, false, 3);
    let sched = BatchScheduler::new(2);
    let out = JoinExecutor::new(&spec).unwrap().run(&sched).unwrap();

    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let pairs = g.cross_join("a", &g, "b", |i, j| i < j).unwrap();
    let call = UdfCall::resolve(entry.udf.clone(), pairs.schema(), &["a.z", "b.z"]).unwrap();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let mut ex = Executor::new(EvalStrategy::Mc, accuracy, &call, entry.output_range).unwrap();
    let hand = ex.select_batch(&pairs, &call, &pred, &sched, 3).unwrap();
    assert_rows_identical(&out.rows, &hand, "mc single batch");
}

/// Spec validation: pruning without GP or without a predicate is refused,
/// oversized joins are refused before any work.
#[test]
fn invalid_specs_are_refused() {
    let g = galaxies(4);
    let (spec, _) = angdist_spec(&g, EvalStrategy::Mc, true, 1);
    assert!(matches!(
        JoinExecutor::new(&spec),
        Err(JoinError::InvalidSpec(m)) if m.contains("GP")
    ));

    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let no_pred = JoinSpec::new(
        &g,
        "a",
        &g,
        "b",
        entry.udf.clone(),
        &[(Side::Left, "z"), (Side::Right, "z")],
        accuracy,
        entry.output_range,
    )
    .unwrap()
    .strategy(EvalStrategy::Gp)
    .prune(true);
    assert!(matches!(
        JoinExecutor::new(&no_pred),
        Err(JoinError::InvalidSpec(m)) if m.contains("predicate")
    ));
}

/// A projection join (no WHERE) emits every candidate pair with TEP 1.
#[test]
fn projection_join_keeps_every_pair() {
    let g = galaxies(6);
    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let accuracy =
        AccuracyRequirement::new(0.25, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let spec = JoinSpec::new(
        &g,
        "a",
        &g,
        "b",
        entry.udf.clone(),
        &[(Side::Left, "z"), (Side::Right, "z")],
        accuracy,
        entry.output_range,
    )
    .unwrap()
    .on_less_than("objID", "objID")
    .unwrap()
    .strategy(EvalStrategy::Gp)
    .seed(5);
    let sched = BatchScheduler::new(2);
    let out = JoinExecutor::new(&spec).unwrap().run(&sched).unwrap();
    assert_eq!(out.rows.len(), 15);
    assert!(out.rows.iter().all(|r| r.tep == 1.0));
    assert_eq!(out.stats.pairs_kept, 15);
}
