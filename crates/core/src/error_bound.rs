//! Error bounds on GP output distributions (§4.2–§4.3).
//!
//! Given the three empirical CDFs produced by sampling the GP posterior —
//! Ŷ′ (mean function), Y′_S (lower envelope `f̂ − z_α σ`), Y′_L (upper
//! envelope `f̂ + z_α σ`) — the GP share of the error is
//!
//! `ε_GP = sup_{[a,b]: b−a≥λ} max(ρ′_U − ρ̂′, ρ̂′ − ρ′_L)`
//!
//! with `ρ′_U = F_S(b) − F_L(a)` and `ρ′_L = max(0, F_L(b) − F_S(a))`
//! (Eqs. 3–4). This module implements the paper's **Algorithm 3**: an
//! O(m log m) sweep that precomputes suffix maxima of the envelope gaps and
//! binary-searches the case split of `ρ′_L`, instead of the naive O(m²)
//! enumeration of interval endpoints.
//!
//! Interval convention: probabilities are CDF differences (`(a, b]`
//! half-open), consistent across all three CDFs, matching Algorithm 3's use
//! of `Pr[Y ≤ ·]` everywhere; the supremum over the enumerated endpoints
//! equals the two-sided-interval supremum for continuous outputs.

use udf_prob::metrics::ks;
use udf_prob::Ecdf;

/// The λ-discrepancy GP error bound ε_GP (Algorithm 3).
///
/// `y_hat`, `y_s`, `y_l` are the empirical CDFs of the mean and of the
/// lower/upper envelope functions; the envelope CDF ordering
/// `F_S ≥ F̂ ≥ F_L` holds by construction (each sample's envelope values
/// bracket its mean value).
pub fn lambda_discrepancy_bound(y_hat: &Ecdf, y_s: &Ecdf, y_l: &Ecdf, lambda: f64) -> f64 {
    debug_assert!(lambda >= 0.0);
    // Merged support + sentinels (below: all CDFs 0; above: all CDFs 1).
    let mut v: Vec<f64> = y_hat
        .values()
        .iter()
        .chain(y_s.values())
        .chain(y_l.values())
        .copied()
        .collect();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("ECDF values are finite"));
    v.dedup();
    let lo_sent = v[0] - lambda - 1.0;
    let hi_sent = v[v.len() - 1] + lambda + 1.0;
    let mut vals = Vec::with_capacity(v.len() + 2);
    vals.push(lo_sent);
    vals.extend_from_slice(&v);
    vals.push(hi_sent);
    let k = vals.len();

    // Step arrays at each candidate point.
    let f_hat: Vec<f64> = vals.iter().map(|&y| y_hat.cdf(y)).collect();
    let f_s: Vec<f64> = vals.iter().map(|&y| y_s.cdf(y)).collect();
    let f_l: Vec<f64> = vals.iter().map(|&y| y_l.cdf(y)).collect();

    // Suffix maxima (Algorithm 3 Step 2):
    //   sm_su[j] = max_{i ≥ j} (F_S − F̂)(v_i)   — for ρ′_U − ρ̂′
    //   sm_hl[j] = max_{i ≥ j} (F̂ − F_L)(v_i)   — for ρ̂′ − ρ′_L, case B
    let mut sm_su = vec![f64::NEG_INFINITY; k + 1];
    let mut sm_hl = vec![f64::NEG_INFINITY; k + 1];
    for j in (0..k).rev() {
        sm_su[j] = sm_su[j + 1].max(f_s[j] - f_hat[j]);
        sm_hl[j] = sm_hl[j + 1].max(f_hat[j] - f_l[j]);
    }

    // Sup of a right-continuous step function over { b ≥ t }: combine the
    // value on t's flat segment with the suffix over later jump points.
    let floor_idx = |t: f64| -> usize {
        // Largest index with vals[idx] <= t; lo_sent guarantees existence.
        vals.partition_point(|&x| x <= t) - 1
    };
    let step_sup_from = |suffix: &[f64], t: f64, point_vals: &dyn Fn(usize) -> f64| -> f64 {
        let fi = floor_idx(t);
        point_vals(fi).max(suffix[fi + 1])
    };

    let mut best = 0.0f64;
    for (ai, &a) in vals.iter().enumerate() {
        let t = a + lambda; // b must satisfy b ≥ t
        if t > hi_sent {
            continue;
        }

        // --- ρ′_U − ρ̂′ = (F_S − F̂)(b) + (F̂ − F_L)(a), b ≥ t.
        let su_b = step_sup_from(&sm_su, t, &|i| f_s[i] - f_hat[i]);
        best = best.max(su_b + (f_hat[ai] - f_l[ai]));

        // --- ρ̂′ − ρ′_L = F̂(b) − F̂(a) − max(0, F_L(b) − F_S(a)), b ≥ t.
        let c = f_s[ai];
        // Case A: F_L(b) ≤ c. F_L(b) ≤ c holds for b < vals[k1] where k1 is
        // the first index with F_L > c; on that region F̂ is maximized just
        // below vals[k1] (i.e. at index k1-1), subject to b ≥ t.
        let k1 = f_l.partition_point(|&x| x <= c); // first idx with F_L > c
        if k1 > 0 {
            let b_region_top = k1 - 1; // largest index with F_L ≤ c
            if vals[b_region_top] >= t {
                best = best.max(f_hat[b_region_top] - f_hat[ai]);
            } else if k1 < k && t < vals[k1] {
                // b ∈ [t, vals[k1]) nonempty; F̂ there equals F̂(floor(t)).
                best = best.max(f_hat[floor_idx(t)] - f_hat[ai]);
            }
        }
        // Case B: F_L(b) > c, i.e. b ≥ vals[k1] (if any); also b ≥ t.
        if k1 < k {
            let t2 = t.max(vals[k1]);
            let hl_b = step_sup_from(&sm_hl, t2, &|i| f_hat[i] - f_l[i]);
            best = best.max(hl_b + (c - f_hat[ai]));
        }
    }
    best.max(0.0)
}

/// Naive O(k²) reference implementation (used by tests and available for
/// cross-checking): enumerate all candidate endpoint pairs.
pub fn lambda_discrepancy_bound_naive(y_hat: &Ecdf, y_s: &Ecdf, y_l: &Ecdf, lambda: f64) -> f64 {
    let mut v: Vec<f64> = y_hat
        .values()
        .iter()
        .chain(y_s.values())
        .chain(y_l.values())
        .copied()
        .collect();
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    v.dedup();
    let lo = v[0] - lambda - 1.0;
    let hi = v[v.len() - 1] + lambda + 1.0;
    let mut vals = vec![lo];
    vals.extend_from_slice(&v);
    vals.push(hi);

    let mut best = 0.0f64;
    for (i, &a) in vals.iter().enumerate() {
        // Candidate right endpoints: later support values plus b = a + λ
        // exactly (the supremum can fall between support points when the
        // length constraint binds).
        let candidates = vals[i..].iter().copied().chain(std::iter::once(a + lambda));
        for b in candidates {
            if b - a < lambda {
                continue;
            }
            let rho_hat = y_hat.cdf(b) - y_hat.cdf(a);
            let rho_u = y_s.cdf(b) - y_l.cdf(a);
            let rho_l = (y_l.cdf(b) - y_s.cdf(a)).max(0.0);
            best = best.max(rho_u - rho_hat).max(rho_hat - rho_l);
        }
    }
    best.max(0.0)
}

/// The KS-metric GP error bound (Proposition 4.2): the KS distance between
/// Ŷ′ and each envelope output, maximized.
pub fn ks_bound(y_hat: &Ecdf, y_s: &Ecdf, y_l: &Ecdf) -> f64 {
    ks(y_hat, y_s).max(ks(y_hat, y_l))
}

/// Build the three empirical CDFs from per-sample posterior predictions.
///
/// `means[i]` and `sds[i]` are the GP posterior mean/standard deviation at
/// input sample `i`; the envelopes are `mean ∓ z·sd` (Y_S from the lower
/// envelope, Y_L from the upper).
pub fn envelope_ecdfs(means: &[f64], sds: &[f64], z: f64) -> udf_prob::Result<(Ecdf, Ecdf, Ecdf)> {
    debug_assert_eq!(means.len(), sds.len());
    let y_hat = Ecdf::new(means.to_vec())?;
    let y_s = Ecdf::new(
        means
            .iter()
            .zip(sds)
            .map(|(m, s)| m - z * s)
            .collect::<Vec<_>>(),
    )?;
    let y_l = Ecdf::new(
        means
            .iter()
            .zip(sds)
            .map(|(m, s)| m + z * s)
            .collect::<Vec<_>>(),
    )?;
    Ok((y_hat, y_s, y_l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_triple(seed: u64, m: usize) -> (Ecdf, Ecdf, Ecdf) {
        let mut rng = StdRng::seed_from_u64(seed);
        let means: Vec<f64> = (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let sds: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..1.0)).collect();
        envelope_ecdfs(&means, &sds, 2.0).unwrap()
    }

    #[test]
    fn zero_envelope_gives_zero_bound() {
        let means = vec![1.0, 2.0, 3.0, 4.0];
        let sds = vec![0.0; 4];
        let (h, s, l) = envelope_ecdfs(&means, &sds, 3.0).unwrap();
        assert_eq!(lambda_discrepancy_bound(&h, &s, &l, 0.0), 0.0);
        assert_eq!(ks_bound(&h, &s, &l), 0.0);
    }

    #[test]
    fn fast_matches_naive_on_random_inputs() {
        for seed in 0..20 {
            let (h, s, l) = random_triple(seed, 40);
            for &lambda in &[0.0, 0.1, 0.5, 2.0, 10.0] {
                let fast = lambda_discrepancy_bound(&h, &s, &l, lambda);
                let naive = lambda_discrepancy_bound_naive(&h, &s, &l, lambda);
                assert!(
                    (fast - naive).abs() < 1e-12,
                    "seed={seed} λ={lambda}: fast={fast} naive={naive}"
                );
            }
        }
    }

    #[test]
    fn bound_shrinks_with_lambda() {
        let (h, s, l) = random_triple(7, 60);
        let b0 = lambda_discrepancy_bound(&h, &s, &l, 0.0);
        let b1 = lambda_discrepancy_bound(&h, &s, &l, 1.0);
        let b5 = lambda_discrepancy_bound(&h, &s, &l, 5.0);
        assert!(b1 <= b0 + 1e-12);
        assert!(b5 <= b1 + 1e-12);
    }

    #[test]
    fn bound_shrinks_with_tighter_envelope() {
        let mut rng = StdRng::seed_from_u64(3);
        let means: Vec<f64> = (0..50).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let sds: Vec<f64> = (0..50).map(|_| rng.gen_range(0.1..0.5)).collect();
        let (h1, s1, l1) = envelope_ecdfs(&means, &sds, 1.0).unwrap();
        let (h3, s3, l3) = envelope_ecdfs(&means, &sds, 3.0).unwrap();
        assert!(
            lambda_discrepancy_bound(&h1, &s1, &l1, 0.1)
                <= lambda_discrepancy_bound(&h3, &s3, &l3, 0.1) + 1e-12
        );
        assert!(ks_bound(&h1, &s1, &l1) <= ks_bound(&h3, &s3, &l3) + 1e-12);
    }

    #[test]
    fn bound_dominates_any_envelope_member_discrepancy() {
        // Any Ỹ′ built from per-sample values inside [mean−zσ, mean+zσ] must
        // have λ-discrepancy from Ŷ′ within the bound (Proposition 4.1).
        let mut rng = StdRng::seed_from_u64(11);
        let means: Vec<f64> = (0..80).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let sds: Vec<f64> = (0..80).map(|_| rng.gen_range(0.05..0.6)).collect();
        let z = 2.0;
        let (h, s, l) = envelope_ecdfs(&means, &sds, z).unwrap();
        for lambda in [0.0, 0.5] {
            let bound = lambda_discrepancy_bound(&h, &s, &l, lambda);
            for trial in 0..10 {
                let mut trial_rng = StdRng::seed_from_u64(100 + trial);
                let tilde: Vec<f64> = means
                    .iter()
                    .zip(&sds)
                    .map(|(m, sd)| m + trial_rng.gen_range(-1.0..1.0) * z * sd)
                    .collect();
                let y_tilde = Ecdf::new(tilde).unwrap();
                let d = udf_prob::metrics::lambda_discrepancy(&y_tilde, &h, lambda);
                assert!(
                    d <= bound + 1e-9,
                    "λ={lambda} trial={trial}: D = {d} exceeds bound {bound}"
                );
            }
        }
    }

    #[test]
    fn ks_bound_dominates_envelope_members() {
        let (h, s, l) = random_triple(21, 60);
        let bound = ks_bound(&h, &s, &l);
        // The extreme members are the envelopes themselves (Prop. 4.2).
        assert!(udf_prob::metrics::ks(&h, &s) <= bound + 1e-15);
        assert!(udf_prob::metrics::ks(&h, &l) <= bound + 1e-15);
    }

    #[test]
    fn wide_envelope_saturates_near_one() {
        let means = vec![0.0; 30];
        let sds = vec![100.0; 30];
        let (h, s, l) = envelope_ecdfs(&means, &sds, 3.0).unwrap();
        let b = lambda_discrepancy_bound(&h, &s, &l, 0.0);
        assert!(b > 0.9, "bound = {b}");
    }
}
