//! User accuracy requirements and algorithm configuration (§2.1, §5.4, §6.1).

use crate::{CoreError, Result};
use udf_prob::bounds::{split_accuracy, AccuracySplit};

/// Which distance metric the accuracy requirement is stated in (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// λ-discrepancy (Definitions 1/3); the paper's default for experiments.
    Discrepancy,
    /// Kolmogorov–Smirnov distance (Definition 2).
    Ks,
}

/// The user's `(ε, δ)` accuracy requirement with minimum interval length λ
/// (Definition 4): with probability `1 − δ`, the returned distribution is
/// within `ε` of the truth under the chosen metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRequirement {
    /// Error tolerance ε ∈ (0, 1).
    pub eps: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Minimum interval length λ ≥ 0 for the λ-discrepancy
    /// (ignored under [`Metric::Ks`]).
    pub lambda: f64,
    /// Metric the requirement is stated in.
    pub metric: Metric,
}

impl AccuracyRequirement {
    /// Validated constructor.
    pub fn new(eps: f64, delta: f64, lambda: f64, metric: Metric) -> Result<Self> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(CoreError::InvalidConfig {
                what: "eps",
                value: eps,
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CoreError::InvalidConfig {
                what: "delta",
                value: delta,
            });
        }
        if !(lambda >= 0.0 && lambda.is_finite()) {
            return Err(CoreError::InvalidConfig {
                what: "lambda",
                value: lambda,
            });
        }
        Ok(AccuracyRequirement {
            eps,
            delta,
            lambda,
            metric,
        })
    }

    /// The paper's default experimental setting: ε = 0.1, δ = 0.05,
    /// discrepancy metric (λ set by the caller relative to function range).
    pub fn paper_default(lambda: f64) -> Self {
        AccuracyRequirement {
            eps: 0.1,
            delta: 0.05,
            lambda,
            metric: Metric::Discrepancy,
        }
    }

    /// Number of Monte Carlo samples needed to meet this requirement by
    /// direct sampling (Algorithm 1 / §2.2-A).
    pub fn mc_samples(&self) -> usize {
        match self.metric {
            Metric::Ks => udf_prob::bounds::mc_samples_ks(self.eps, self.delta),
            Metric::Discrepancy => udf_prob::bounds::mc_samples_discrepancy(self.eps, self.delta),
        }
    }
}

/// How OLGAPRO spends a bounded model budget once the training set reaches
/// [`OlgaproConfig::max_model_points`].
///
/// Exact-GP cost grows with the training-set size `m`: O(m²) per inference
/// and O(m³) per retrain, so an unbounded model turns a long run of hard
/// tuples into a quadratic/cubic wall. A budget keeps per-tuple cost
/// bounded, in the spirit of sparse-GP inducing-point budgets (SPGP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelBudget {
    /// Stop adding training points: over-budget tuples are emitted at the
    /// *achieved* error bound (which stays attached to every output), and
    /// each such degraded acceptance is counted in
    /// [`crate::olgapro::OlgaproStats::cap_hits`]. The default.
    #[default]
    StopGrowing,
    /// Evict the oldest training point to make room, so the model keeps
    /// adapting to input drift at a fixed size. Each eviction re-factors
    /// the covariance — O(cap³), expensive but *bounded* per tuple.
    EvictOldest,
}

/// When OLGAPRO re-learns hyperparameters (§5.3 / Expt 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrainStrategy {
    /// Never retrain after the initial fit.
    Never,
    /// Retrain whenever any training point was added ("eager").
    Eager,
    /// Retrain when the first Newton step exceeds Δθ (the paper's choice;
    /// §6 finds Δθ = 0.05 robust).
    NewtonThreshold(f64),
}

/// Configuration for OLGAPRO (Algorithm 5) and the offline GP evaluator.
#[derive(Debug, Clone, PartialEq)]
pub struct OlgaproConfig {
    /// The user accuracy requirement.
    pub accuracy: AccuracyRequirement,
    /// Fraction of ε allocated to MC sampling (Profile 3: 0.7).
    pub mc_fraction: f64,
    /// Local-inference threshold Γ, in absolute output units. The paper
    /// recommends ≈ 5% of the function range (§6, Expt 1).
    pub gamma: f64,
    /// Maximum training points added per input tuple (Expt 2 uses 10).
    pub max_points_per_input: usize,
    /// Retraining strategy.
    pub retrain: RetrainStrategy,
    /// Number of bootstrap UDF evaluations when the model is empty.
    pub bootstrap_points: usize,
    /// Initial kernel lengthscale (relative scale; retraining adapts it).
    pub init_lengthscale: f64,
    /// Initial kernel signal standard deviation.
    pub init_sigma_f: f64,
    /// Maximum GP training-set size; **0 means uncapped** (the default).
    /// Nonzero caps must be at least the bootstrap size
    /// ([`min_model_cap`](OlgaproConfig::min_model_cap)) — set them through
    /// [`with_model_cap`](OlgaproConfig::with_model_cap) /
    /// [`set_model_cap`](OlgaproConfig::set_model_cap), which validate.
    pub max_model_points: usize,
    /// What happens at the cap (ignored while `max_model_points == 0`).
    pub model_budget: ModelBudget,
}

impl OlgaproConfig {
    /// Defaults matching the paper's experimental setup for a function with
    /// the given output range estimate.
    pub fn new(accuracy: AccuracyRequirement, output_range: f64) -> Result<Self> {
        if !(output_range > 0.0 && output_range.is_finite()) {
            return Err(CoreError::InvalidConfig {
                what: "output_range",
                value: output_range,
            });
        }
        Ok(OlgaproConfig {
            accuracy,
            mc_fraction: 0.7,
            gamma: 0.05 * output_range,
            max_points_per_input: 10,
            retrain: RetrainStrategy::NewtonThreshold(0.05),
            bootstrap_points: 5,
            init_lengthscale: 1.0,
            init_sigma_f: 1.0,
            max_model_points: 0,
            model_budget: ModelBudget::StopGrowing,
        })
    }

    /// The smallest valid nonzero model cap: the bootstrap size. A cap
    /// below it could never finish bootstrapping (stop-growing) or would
    /// thrash the bootstrap set (evict-oldest).
    pub fn min_model_cap(&self) -> usize {
        self.bootstrap_points.max(2)
    }

    /// Set the model-size budget in place. `n == 0` removes the cap;
    /// nonzero caps below [`min_model_cap`](OlgaproConfig::min_model_cap)
    /// are rejected.
    pub fn set_model_cap(&mut self, n: usize, budget: ModelBudget) -> Result<()> {
        if n > 0 && n < self.min_model_cap() {
            return Err(CoreError::InvalidConfig {
                what: "max_model_points",
                value: n as f64,
            });
        }
        self.max_model_points = n;
        self.model_budget = budget;
        Ok(())
    }

    /// Builder-style [`set_model_cap`](OlgaproConfig::set_model_cap).
    pub fn with_model_cap(mut self, n: usize, budget: ModelBudget) -> Result<Self> {
        self.set_model_cap(n, budget)?;
        Ok(self)
    }

    /// The (ε, δ) split between sampling and GP modeling (Theorem 4.1).
    pub fn split(&self) -> AccuracySplit {
        split_accuracy(self.accuracy.eps, self.accuracy.delta, self.mc_fraction)
    }

    /// MC sample count per input under the sampling share of the budget.
    pub fn samples_per_input(&self) -> usize {
        let s = self.split();
        match self.accuracy.metric {
            Metric::Ks => udf_prob::bounds::mc_samples_ks(s.eps_mc, s.delta_mc),
            Metric::Discrepancy => udf_prob::bounds::mc_samples_discrepancy(s.eps_mc, s.delta_mc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_ranges() {
        assert!(AccuracyRequirement::new(0.0, 0.05, 0.1, Metric::Ks).is_err());
        assert!(AccuracyRequirement::new(0.1, 1.0, 0.1, Metric::Ks).is_err());
        assert!(AccuracyRequirement::new(0.1, 0.05, -1.0, Metric::Ks).is_err());
        assert!(AccuracyRequirement::new(0.1, 0.05, 0.1, Metric::Discrepancy).is_ok());
        // Non-finite requirements must fail closed, not pass a vacuous
        // range comparison.
        assert!(AccuracyRequirement::new(f64::NAN, 0.05, 0.1, Metric::Ks).is_err());
        assert!(AccuracyRequirement::new(f64::INFINITY, 0.05, 0.1, Metric::Ks).is_err());
        assert!(AccuracyRequirement::new(0.1, f64::NAN, 0.1, Metric::Ks).is_err());
        assert!(AccuracyRequirement::new(0.1, 0.05, f64::NAN, Metric::Ks).is_err());
    }

    #[test]
    fn mc_sample_counts_by_metric() {
        let ks = AccuracyRequirement::new(0.1, 0.05, 0.0, Metric::Ks).unwrap();
        let d = AccuracyRequirement::new(0.1, 0.05, 0.0, Metric::Discrepancy).unwrap();
        // Discrepancy needs 4x the samples (ε/2 in the DKW bound).
        assert_eq!(d.mc_samples(), udf_prob::bounds::mc_samples_ks(0.05, 0.05));
        assert!(d.mc_samples() > 3 * ks.mc_samples());
    }

    #[test]
    fn config_split_consistent() {
        let acc = AccuracyRequirement::paper_default(0.1);
        let cfg = OlgaproConfig::new(acc, 10.0).unwrap();
        let s = cfg.split();
        assert!((s.eps_mc + s.eps_gp - 0.1).abs() < 1e-12);
        assert!((cfg.gamma - 0.5).abs() < 1e-12);
        assert!(cfg.samples_per_input() > 0);
    }

    #[test]
    fn model_cap_validation() {
        let acc = AccuracyRequirement::paper_default(0.1);
        let cfg = OlgaproConfig::new(acc, 10.0).unwrap();
        assert_eq!(cfg.max_model_points, 0, "default is uncapped");
        assert_eq!(cfg.model_budget, ModelBudget::StopGrowing);
        assert_eq!(cfg.min_model_cap(), 5);
        // 0 clears the cap; caps >= bootstrap are fine; 1..bootstrap thrash.
        assert!(cfg
            .clone()
            .with_model_cap(0, ModelBudget::StopGrowing)
            .is_ok());
        assert!(cfg
            .clone()
            .with_model_cap(5, ModelBudget::EvictOldest)
            .is_ok());
        for bad in 1..5 {
            assert!(
                cfg.clone()
                    .with_model_cap(bad, ModelBudget::StopGrowing)
                    .is_err(),
                "cap {bad} is below the bootstrap size"
            );
        }
    }

    #[test]
    fn rejects_bad_range() {
        let acc = AccuracyRequirement::paper_default(0.1);
        assert!(OlgaproConfig::new(acc, 0.0).is_err());
        assert!(OlgaproConfig::new(acc, f64::INFINITY).is_err());
    }
}
