//! # udf-core — Supporting User-Defined Functions on Uncertain Data
//!
//! The primary contribution of Tran, Diao, Sutton & Liu (VLDB 2013),
//! implemented in full:
//!
//! * [`udf`] — black-box UDFs with call accounting and a pluggable
//!   evaluation-cost model;
//! * [`config`] — user accuracy requirements `(ε, δ, λ)` and algorithm
//!   parameters;
//! * [`mc`] — the Monte Carlo baseline (Algorithm 1) with DKW sample counts;
//! * [`output`] — result distributions with attached error bounds and
//!   envelope CDFs;
//! * [`error_bound`] — Algorithm 3 (the O(m log m) λ-discrepancy bound over
//!   the three empirical CDFs) and the Proposition 4.2 KS bound;
//! * [`gp_eval`] — the offline GP evaluator (Algorithm 2);
//! * [`olgapro`] — **OLGAPRO** (Algorithm 5): the optimized online
//!   algorithm with local inference, online tuning, and thresholded
//!   retraining;
//! * [`filtering`] — online filtering against selection predicates
//!   (Remark 2.1 for MC, §5.5 for GP);
//! * [`hybrid`] — the §5.4 hybrid solution that picks MC or GP per UDF;
//! * [`sched`] — the unified two-phase batch-execution core: a persistent
//!   worker pool plus the fast/slow scheduling pattern shared by
//!   [`parallel`], the stream engine, and the relational executor;
//! * [`parallel`] — batch-parallel stream processing (a §8 future-work
//!   item), a thin delegation to [`sched`];
//! * [`multi`] — multivariate-output UDFs via per-component emulators with a
//!   union-bound joint guarantee (the other §8 future-work item).

pub mod config;
pub mod error_bound;
pub mod filtering;
pub mod gp_eval;
pub mod hybrid;
pub mod mc;
pub mod multi;
pub mod olgapro;
pub mod output;
pub mod parallel;
pub mod sched;
pub mod udf;

pub use config::{AccuracyRequirement, Metric, ModelBudget, OlgaproConfig, RetrainStrategy};
pub use filtering::{FilterDecision, Predicate};
pub use hybrid::{HybridChoice, HybridEvaluator};
pub use mc::McEvaluator;
pub use olgapro::{InferScratch, Olgapro, OlgaproMetrics};
pub use output::{GpOutput, OutputDistribution};
pub use sched::{mix_seed, BatchOps, BatchScheduler, BatchStats, SchedMetrics, Verdict};
pub use udf::{BlackBoxUdf, CostModel, FnUdf, UdfFunction};

use std::fmt;

/// Errors raised by the evaluation framework.
#[derive(Debug)]
pub enum CoreError {
    /// Probability-layer failure.
    Prob(udf_prob::ProbError),
    /// GP-layer failure.
    Gp(udf_gp::GpError),
    /// A UDF returned a non-finite value at the given input.
    NonFiniteUdfOutput { input: Vec<f64>, value: f64 },
    /// The input distribution's dimensionality disagrees with the UDF's.
    DimensionMismatch { expected: usize, found: usize },
    /// Invalid configuration value.
    InvalidConfig { what: &'static str, value: f64 },
    /// A scheduler worker thread panicked while evaluating a batch
    /// (typically a panicking UDF). Carries the panic message when one was
    /// available.
    WorkerPanicked { message: String },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Prob(e) => write!(f, "probability error: {e}"),
            CoreError::Gp(e) => write!(f, "GP error: {e}"),
            CoreError::NonFiniteUdfOutput { input, value } => {
                write!(f, "UDF returned non-finite value {value} at {input:?}")
            }
            CoreError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            CoreError::InvalidConfig { what, value } => {
                write!(f, "invalid configuration: {what} = {value}")
            }
            CoreError::WorkerPanicked { message } => {
                write!(
                    f,
                    "a scheduler worker thread panicked while evaluating a batch: {message}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<udf_prob::ProbError> for CoreError {
    fn from(e: udf_prob::ProbError) -> Self {
        CoreError::Prob(e)
    }
}

impl From<udf_gp::GpError> for CoreError {
    fn from(e: udf_gp::GpError) -> Self {
        CoreError::Gp(e)
    }
}

/// Result alias for framework operations.
pub type Result<T> = std::result::Result<T, CoreError>;
