//! The offline GP evaluator (§4.1, Algorithm 2).
//!
//! Train once on a fixed design, then answer every input by sampling the
//! input distribution and running GP inference in place of the UDF. This is
//! the baseline that OLGAPRO (Algorithm 5) improves on: it cannot adapt the
//! training set to the accuracy requirement.

use crate::config::{Metric, OlgaproConfig};
use crate::error_bound::{envelope_ecdfs, ks_bound, lambda_discrepancy_bound};
use crate::output::GpOutput;
use crate::udf::BlackBoxUdf;
use crate::{CoreError, Result};
use udf_gp::band::simultaneous_z;
use udf_gp::train::{train, TrainConfig};
use udf_gp::{GpModel, SquaredExponential};
use udf_prob::InputDistribution;
use udf_spatial::BoundingBox;

/// Offline evaluator: fixed training set, global inference.
#[derive(Debug)]
pub struct OfflineGpEvaluator {
    udf: BlackBoxUdf,
    model: GpModel,
    config: OlgaproConfig,
}

impl OfflineGpEvaluator {
    /// Create with the paper's default squared-exponential kernel.
    pub fn new(udf: BlackBoxUdf, config: OlgaproConfig) -> Self {
        let kernel = SquaredExponential::new(config.init_sigma_f, config.init_lengthscale);
        let model = GpModel::new(Box::new(kernel), udf.dim());
        OfflineGpEvaluator { udf, model, config }
    }

    /// Borrow the trained model.
    pub fn model(&self) -> &GpModel {
        &self.model
    }

    /// Borrow the UDF (for call accounting).
    pub fn udf(&self) -> &BlackBoxUdf {
        &self.udf
    }

    /// Step 1–2 of Algorithm 2: evaluate the UDF at the design points, fit
    /// the GP, and learn hyperparameters by MLE.
    pub fn train_at(&mut self, design: &[Vec<f64>]) -> Result<()> {
        let ys: Vec<f64> = design
            .iter()
            .map(|x| {
                let y = self.udf.eval(x);
                if y.is_finite() {
                    Ok(y)
                } else {
                    Err(CoreError::NonFiniteUdfOutput {
                        input: x.clone(),
                        value: y,
                    })
                }
            })
            .collect::<Result<_>>()?;
        self.model.fit(design.to_vec(), ys)?;
        train(&mut self.model, &TrainConfig::default())?;
        Ok(())
    }

    /// Steps 3–6 of Algorithm 2: sample the uncertain input, infer with the
    /// GP, and return the output with its error bounds.
    pub fn compute(
        &self,
        input: &InputDistribution,
        rng: &mut dyn rand::RngCore,
    ) -> Result<GpOutput> {
        if input.dim() != self.udf.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.udf.dim(),
                found: input.dim(),
            });
        }
        if self.model.is_empty() {
            return Err(CoreError::Gp(udf_gp::GpError::EmptyModel));
        }
        let split = self.config.split();
        let m = self.config.samples_per_input();
        let samples = input.sample_n(rng, m);
        let bbox = BoundingBox::from_points(samples.iter().map(|s| s.as_slice()));
        let z_alpha = simultaneous_z(self.model.kernel(), &bbox, split.delta_gp);

        // One blocked multi-RHS inference over all m samples (bit-identical
        // to the per-sample `predict` loop this replaced).
        let preds = self.model.predict_batch(&samples)?;
        let mut means = Vec::with_capacity(m);
        let mut sds = Vec::with_capacity(m);
        for p in &preds {
            means.push(p.mean);
            sds.push(p.var.sqrt());
        }
        let (y_hat, y_s, y_l) = envelope_ecdfs(&means, &sds, z_alpha)?;
        let eps_gp = match self.config.accuracy.metric {
            Metric::Discrepancy => {
                lambda_discrepancy_bound(&y_hat, &y_s, &y_l, self.config.accuracy.lambda)
            }
            Metric::Ks => ks_bound(&y_hat, &y_s, &y_l),
        };
        Ok(GpOutput {
            y_hat,
            y_s,
            y_l,
            eps_gp,
            eps_mc: split.eps_mc,
            z_alpha,
            points_added: 0,
            retrained: false,
            udf_calls: 0,
        })
    }
}

/// A uniform grid design over a box domain (1-D) or Latin-hypercube-style
/// stratified design (higher dimensions) for offline training.
pub fn stratified_design(
    lo: &[f64],
    hi: &[f64],
    n: usize,
    rng: &mut dyn rand::RngCore,
) -> Vec<Vec<f64>> {
    use rand::Rng;
    let d = lo.len();
    debug_assert_eq!(d, hi.len());
    if d == 1 {
        // Uniform grid including endpoints.
        return (0..n)
            .map(|i| {
                let t = if n > 1 {
                    i as f64 / (n - 1) as f64
                } else {
                    0.5
                };
                vec![lo[0] + t * (hi[0] - lo[0])]
            })
            .collect();
    }
    // Latin hypercube: per-dimension stratified permutation.
    let mut strata: Vec<Vec<usize>> = (0..d).map(|_| (0..n).collect()).collect();
    for s in &mut strata {
        // Fisher–Yates.
        for i in (1..s.len()).rev() {
            let j = rng.gen_range(0..=i);
            s.swap(i, j);
        }
    }
    (0..n)
        .map(|i| {
            (0..d)
                .map(|k| {
                    let cell = strata[k][i] as f64;
                    let u: f64 = rng.gen_range(0.0..1.0);
                    lo[k] + (cell + u) / n as f64 * (hi[k] - lo[k])
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccuracyRequirement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn smooth_udf() -> BlackBoxUdf {
        BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin())
    }

    fn config(eps: f64) -> OlgaproConfig {
        let acc = AccuracyRequirement::new(eps, 0.05, 0.02, Metric::Discrepancy).unwrap();
        OlgaproConfig::new(acc, 2.0).unwrap()
    }

    #[test]
    fn offline_pipeline_produces_valid_output() {
        let udf = smooth_udf();
        let mut eval = OfflineGpEvaluator::new(udf, config(0.2));
        let mut rng = StdRng::seed_from_u64(5);
        let design = stratified_design(&[0.0], &[10.0], 30, &mut rng);
        eval.train_at(&design).unwrap();
        assert_eq!(eval.model().len(), 30);

        let input = InputDistribution::diagonal_gaussian(&[(5.0, 0.5)]).unwrap();
        let out = eval.compute(&input, &mut rng).unwrap();
        assert!(out.eps_gp < 0.2, "eps_gp = {}", out.eps_gp);
        assert!(out.z_alpha > 1.96);
        // Output should concentrate near sin(0.8·5) ≈ -0.757.
        let med = out.y_hat.quantile(0.5);
        assert!((med - (4.0f64).sin()).abs() < 0.15, "median {med}");
    }

    #[test]
    fn untrained_model_errors() {
        let eval = OfflineGpEvaluator::new(smooth_udf(), config(0.2));
        let input = InputDistribution::diagonal_gaussian(&[(5.0, 0.5)]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(eval.compute(&input, &mut rng).is_err());
    }

    #[test]
    fn more_training_points_tighten_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let input = InputDistribution::diagonal_gaussian(&[(5.0, 0.5)]).unwrap();
        let mut bounds = Vec::new();
        for n in [5, 40] {
            let mut eval = OfflineGpEvaluator::new(smooth_udf(), config(0.2));
            let design = stratified_design(&[0.0], &[10.0], n, &mut rng);
            eval.train_at(&design).unwrap();
            bounds.push(eval.compute(&input, &mut rng).unwrap().eps_gp);
        }
        assert!(
            bounds[1] < bounds[0],
            "5 pts: {}, 40 pts: {}",
            bounds[0],
            bounds[1]
        );
    }

    #[test]
    fn stratified_design_covers_domain() {
        let mut rng = StdRng::seed_from_u64(8);
        let design = stratified_design(&[0.0, -1.0], &[1.0, 1.0], 50, &mut rng);
        assert_eq!(design.len(), 50);
        for p in &design {
            assert!(p[0] >= 0.0 && p[0] <= 1.0);
            assert!(p[1] >= -1.0 && p[1] <= 1.0);
        }
        // Latin property: each of the 50 strata in dim 0 hit exactly once.
        let mut cells: Vec<usize> = design.iter().map(|p| (p[0] * 50.0) as usize).collect();
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(cells.len(), 50);
    }
}
