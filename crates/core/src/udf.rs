//! Black-box UDFs with call accounting and a cost model.
//!
//! The paper treats UDFs as opaque external code whose evaluation may be
//! expensive (§1); the GP/MC trade-off is governed by the per-call time `T`
//! (§6, Expt 5). Sweeping `T` from 1 µs to 1 s with real sleeps would be
//! prohibitively slow, so [`CostModel::Simulated`] *accounts* the nominal
//! cost per call while [`CostModel::Busy`] actually spins (used to validate
//! that the accounting matches reality). See DESIGN.md §3.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deterministic scalar function of a fixed-dimension input vector.
pub trait UdfFunction: Send + Sync {
    /// Input dimensionality.
    fn dim(&self) -> usize;
    /// Evaluate at `x` (`x.len() == dim()` guaranteed by callers).
    fn eval(&self, x: &[f64]) -> f64;
    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "udf"
    }
}

/// Type-erased UDF body.
type UdfBody = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// A [`UdfFunction`] built from a closure.
pub struct FnUdf {
    dim: usize,
    name: String,
    f: UdfBody,
}

impl FnUdf {
    /// Wrap a closure as a `dim`-dimensional UDF.
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        assert!(dim > 0, "dimension must be positive");
        FnUdf {
            dim,
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl UdfFunction for FnUdf {
    fn dim(&self) -> usize {
        self.dim
    }
    fn eval(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for FnUdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnUdf({}, dim={})", self.name, self.dim)
    }
}

/// How a UDF call is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// No extra cost (pure-accuracy experiments).
    Free,
    /// Charge the nominal duration to the accounting counters without
    /// actually waiting (the default for T-sweep experiments).
    Simulated(Duration),
    /// Busy-wait for the duration (validation of the accounting).
    Busy(Duration),
}

impl CostModel {
    /// Nominal per-call cost.
    pub fn per_call(&self) -> Duration {
        match self {
            CostModel::Free => Duration::ZERO,
            CostModel::Simulated(d) | CostModel::Busy(d) => *d,
        }
    }
}

/// A black-box UDF with shared call accounting.
///
/// Cloning is cheap (the function and counters are shared through `Arc`), so
/// the same accounting is observed by every evaluator holding a handle.
#[derive(Clone)]
pub struct BlackBoxUdf {
    inner: Arc<dyn UdfFunction>,
    cost: CostModel,
    calls: Arc<AtomicU64>,
}

impl BlackBoxUdf {
    /// Wrap a function with a cost model.
    pub fn new(inner: Arc<dyn UdfFunction>, cost: CostModel) -> Self {
        BlackBoxUdf {
            inner,
            cost,
            calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Convenience constructor from a closure with no evaluation cost.
    pub fn from_fn(
        name: impl Into<String>,
        dim: usize,
        f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        BlackBoxUdf::new(Arc::new(FnUdf::new(name, dim, f)), CostModel::Free)
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Name of the wrapped function.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Replace the cost model (keeps function and counters).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Evaluate the UDF, recording the call.
    ///
    /// # Panics
    /// Panics if `x.len() != dim()` (caller bug).
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "UDF input dimension mismatch");
        self.calls.fetch_add(1, Ordering::Relaxed);
        if let CostModel::Busy(d) = self.cost {
            let start = Instant::now();
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        }
        self.inner.eval(x)
    }

    /// Total calls so far (shared across clones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Nominal evaluation time charged so far under the cost model.
    pub fn charged_cost(&self) -> Duration {
        self.cost.per_call() * self.calls() as u32
    }

    /// Reset the call counter (between experiment runs).
    pub fn reset_calls(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }

    /// Clone with an independent, zeroed call counter — for comparing two
    /// evaluators over the same function without shared accounting.
    pub fn fork_counter(&self) -> Self {
        BlackBoxUdf {
            inner: Arc::clone(&self.inner),
            cost: self.cost,
            calls: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for BlackBoxUdf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BlackBoxUdf({}, dim={}, cost={:?}, calls={})",
            self.name(),
            self.dim(),
            self.cost,
            self.calls()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_udf_evaluates() {
        let u = BlackBoxUdf::from_fn("sum", 2, |x| x[0] + x[1]);
        assert_eq!(u.eval(&[1.0, 2.0]), 3.0);
        assert_eq!(u.dim(), 2);
        assert_eq!(u.name(), "sum");
    }

    #[test]
    fn call_accounting_shared_across_clones() {
        let u = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let v = u.clone();
        u.eval(&[1.0]);
        v.eval(&[2.0]);
        assert_eq!(u.calls(), 2);
        assert_eq!(v.calls(), 2);
        u.reset_calls();
        assert_eq!(v.calls(), 0);
    }

    #[test]
    fn simulated_cost_accrues_without_waiting() {
        let u = BlackBoxUdf::from_fn("id", 1, |x| x[0])
            .with_cost(CostModel::Simulated(Duration::from_millis(100)));
        let start = Instant::now();
        for _ in 0..50 {
            u.eval(&[0.0]);
        }
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "should not sleep"
        );
        assert_eq!(u.charged_cost(), Duration::from_secs(5));
    }

    #[test]
    fn busy_cost_actually_spins() {
        let u = BlackBoxUdf::from_fn("id", 1, |x| x[0])
            .with_cost(CostModel::Busy(Duration::from_millis(5)));
        let start = Instant::now();
        u.eval(&[0.0]);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let u = BlackBoxUdf::from_fn("sum", 2, |x| x[0] + x[1]);
        u.eval(&[1.0]);
    }
}
