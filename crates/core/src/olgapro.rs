//! OLGAPRO — the ONline GAussian PROcess algorithm (§5, Algorithm 5).
//!
//! Starting from *no* training data, each input tuple is processed by:
//!
//! 1. drawing `m` Monte Carlo samples of the input (m from ε_MC);
//! 2. selecting a training subset by **local inference** around the sample
//!    bounding box (threshold Γ, §5.1);
//! 3. inferring the posterior at every sample, building the three envelope
//!    ECDFs, and computing the Algorithm-3 error bound;
//! 4. **online tuning** (§5.2): while the bound exceeds ε_GP, evaluate the
//!    UDF at the sample with the largest posterior variance, add it to the
//!    model via the incremental Cholesky update, and repeat;
//! 5. **online retraining** (§5.3): if points were added, re-learn the
//!    hyperparameters only when the first Newton step exceeds Δθ.

use crate::config::{Metric, ModelBudget, OlgaproConfig, RetrainStrategy};
use crate::error_bound::{envelope_ecdfs, ks_bound, lambda_discrepancy_bound};
use crate::output::GpOutput;
use crate::udf::BlackBoxUdf;
use crate::{CoreError, Result};
use std::time::Instant;
use udf_gp::band::simultaneous_z;
use udf_gp::local::select_local_with;
use udf_gp::model::Prediction;
use udf_gp::train::{newton_step_norm, train, TrainConfig};
use udf_gp::{
    GpModel, Kernel, LocalPredictorCache, PredictScratch, SelectScratch, SquaredExponential,
};
use udf_obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceBuffer, TraceEvent};
use udf_prob::InputDistribution;
use udf_spatial::BoundingBox;

/// OLGAPRO's observability handles — the paper's cost knobs made visible:
/// where time goes between online tuning (steps 2–7) and retraining
/// (steps 8–14), how the training set grows, and how often the model cap
/// degrades accuracy. Purely observational; un-wired evaluators hold the
/// [`disabled`](OlgaproMetrics::disabled) set.
#[derive(Clone, Debug)]
pub struct OlgaproMetrics {
    /// Time in the online-tuning loop (inference + point additions), per
    /// processed input.
    pub tuning_ns: Histogram,
    /// Time re-learning hyperparameters (plus the step-12 re-inference),
    /// per retrain.
    pub retrain_ns: Histogram,
    /// Current training-set size.
    pub model_points: Gauge,
    /// Training-set size sampled after each processed input — the
    /// model-growth timeline as a distribution (p50/p95/max).
    pub model_size: Histogram,
    /// Degraded-accuracy acceptances forced by the model cap.
    pub cap_hits: Counter,
    /// Time per read-only fast-path evaluation
    /// ([`Olgapro::infer_only_with`]) — the blocked warm inference loop.
    pub fastpath_ns: Histogram,
    /// Local-predictor cache hits: tuples that reused the previous subset
    /// Cholesky factor instead of re-running the O(l³) build.
    pub lp_cache_hits: Counter,
    /// Local-predictor cache misses (fresh subset factorizations).
    pub lp_cache_misses: Counter,
}

impl OlgaproMetrics {
    /// The no-op handle set.
    pub fn disabled() -> Self {
        OlgaproMetrics {
            tuning_ns: Histogram::disabled(),
            retrain_ns: Histogram::disabled(),
            model_points: Gauge::disabled(),
            model_size: Histogram::disabled(),
            cap_hits: Counter::disabled(),
            fastpath_ns: Histogram::disabled(),
            lp_cache_hits: Counter::disabled(),
            lp_cache_misses: Counter::disabled(),
        }
    }

    /// Handles registered under the shared `olgapro.*` names.
    pub fn register(reg: &MetricsRegistry) -> Self {
        OlgaproMetrics {
            tuning_ns: reg.histogram("olgapro.tuning_ns"),
            retrain_ns: reg.histogram("olgapro.retrain_ns"),
            model_points: reg.gauge("olgapro.model_points"),
            model_size: reg.histogram("olgapro.model_size"),
            cap_hits: reg.counter("olgapro.cap_hits"),
            fastpath_ns: reg.histogram("olgapro.fastpath_ns"),
            lp_cache_hits: reg.counter("olgapro.lp_cache.hits"),
            lp_cache_misses: reg.counter("olgapro.lp_cache.misses"),
        }
    }
}

/// Reusable buffers for one evaluation lane: the Monte Carlo sample block,
/// the local-selection scratch, the blocked-prediction scratch, and the
/// one-entry [`LocalPredictorCache`]. Each [`crate::sched::BatchScheduler`]
/// worker owns one, so the warm fast path allocates nothing per tuple in
/// steady state; sequential callers ([`Olgapro::process`]) reuse the one
/// embedded in the evaluator.
#[derive(Debug, Default, Clone)]
pub struct InferScratch {
    /// The m drawn samples of the current tuple.
    samples: Vec<Vec<f64>>,
    /// Everything downstream of sampling (split so `samples` can be
    /// borrowed immutably while the rest is borrowed mutably).
    buf: InferBuffers,
}

#[derive(Debug, Default, Clone)]
struct InferBuffers {
    select: SelectScratch,
    predict: PredictScratch,
    cache: LocalPredictorCache,
    preds: Vec<Prediction>,
    means: Vec<f64>,
    sds: Vec<f64>,
}

/// How online tuning picks the next training point (Expt 2 compares these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningHeuristic {
    /// The paper's choice: the cached sample with the largest posterior
    /// variance.
    LargestVariance,
    /// A random sample (baseline in Expt 2).
    Random,
    /// Hypothetical "optimal greedy": simulate adding every candidate sample
    /// and pick the one reducing the error bound most. Exponentially more
    /// expensive; only for small sample counts.
    OptimalGreedy,
}

/// Cumulative statistics across processed inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OlgaproStats {
    /// Inputs processed.
    pub inputs: u64,
    /// Training points added by online tuning.
    pub points_added: u64,
    /// Retraining runs performed.
    pub retrains: u64,
    /// Retraining decisions evaluated (Newton heuristic invocations).
    pub retrain_checks: u64,
    /// Inputs accepted at a *degraded* (achieved) error bound because the
    /// model cap blocked further online tuning
    /// ([`OlgaproConfig::max_model_points`] under
    /// [`ModelBudget::StopGrowing`]). Nonzero means outputs may carry
    /// `eps_gp` above the GP budget — observable, never silent.
    pub cap_hits: u64,
}

/// The online evaluator (Algorithm 5).
///
/// Cloning snapshots the evaluator — model (under a fresh `model_id`, see
/// [`GpModel`]'s `Clone`), stats, and config — so a warmed evaluator can be
/// captured once and restored per execution (prepared-statement reuse).
#[derive(Clone, Debug)]
pub struct Olgapro {
    udf: BlackBoxUdf,
    model: GpModel,
    config: OlgaproConfig,
    tuning: TuningHeuristic,
    stats: OlgaproStats,
    metrics: OlgaproMetrics,
    /// Structured event log (model growth / eviction / cap hits), emitted
    /// on lane 0: every model mutation happens on the sequential slow
    /// path. Disabled by default; purely observational.
    tracer: TraceBuffer,
    /// Buffers reused across sequential [`Olgapro::process`] calls.
    scratch: InferScratch,
}

impl Olgapro {
    /// Create with the paper's default squared-exponential kernel.
    pub fn new(udf: BlackBoxUdf, config: OlgaproConfig) -> Self {
        let kernel: Box<dyn Kernel> = Box::new(SquaredExponential::new(
            config.init_sigma_f,
            config.init_lengthscale,
        ));
        Self::with_kernel(udf, config, kernel)
    }

    /// Create with an explicit kernel (must be isotropic for local
    /// inference; non-isotropic kernels fall back to global inference).
    pub fn with_kernel(udf: BlackBoxUdf, config: OlgaproConfig, kernel: Box<dyn Kernel>) -> Self {
        let dim = udf.dim();
        Olgapro {
            udf,
            model: GpModel::new(kernel, dim),
            config,
            tuning: TuningHeuristic::LargestVariance,
            stats: OlgaproStats::default(),
            metrics: OlgaproMetrics::disabled(),
            tracer: TraceBuffer::disabled(),
            scratch: InferScratch::default(),
        }
    }

    /// Override the online-tuning heuristic (Expt 2).
    pub fn with_tuning(mut self, tuning: TuningHeuristic) -> Self {
        self.tuning = tuning;
        self
    }

    /// Wire observability handles (builder form). Timings and counters
    /// only observe; the evaluation itself is metric-blind.
    pub fn with_metrics(mut self, metrics: OlgaproMetrics) -> Self {
        self.set_metrics(metrics);
        self
    }

    /// Wire observability handles in place.
    pub fn set_metrics(&mut self, metrics: OlgaproMetrics) {
        self.metrics = metrics;
    }

    /// Wire a trace buffer (builder form). Model growth, evictions, and
    /// cap hits are emitted on lane 0 — model mutations only happen on the
    /// sequential slow path. Events never affect evaluation.
    pub fn with_tracer(mut self, tracer: TraceBuffer) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// Wire a trace buffer in place.
    pub fn set_tracer(&mut self, tracer: TraceBuffer) {
        self.tracer = tracer;
    }

    /// Borrow the model (training-set size, hyperparameters, ...).
    pub fn model(&self) -> &GpModel {
        &self.model
    }

    /// Borrow the UDF (call accounting).
    pub fn udf(&self) -> &BlackBoxUdf {
        &self.udf
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> OlgaproStats {
        self.stats
    }

    /// Configuration in effect.
    pub fn config(&self) -> &OlgaproConfig {
        &self.config
    }

    /// Change the model-size budget in place (validated; see
    /// [`OlgaproConfig::set_model_cap`]). Shrinking the cap below the
    /// current model size stops further growth but does not discard
    /// already-learned points.
    pub fn set_model_cap(&mut self, n: usize, budget: ModelBudget) -> Result<()> {
        self.config.set_model_cap(n, budget)
    }

    /// Change the per-tuple online-tuning budget
    /// ([`OlgaproConfig::max_points_per_input`], the paper's Expt-2 knob,
    /// default 10): each input adds at most `n` training points before it
    /// is emitted at the achieved bound. Workloads whose accuracy target
    /// is unreachable in fresh regions (tight λ over a wide domain) use a
    /// small budget to *spread* model growth across inputs instead of
    /// exhausting it on the first ones — udf-join's warmup relies on
    /// this. Zero is rejected (the tuning loop could never make
    /// progress).
    pub fn set_tuning_budget(&mut self, n: usize) -> Result<()> {
        if n == 0 {
            return Err(CoreError::InvalidConfig {
                what: "max_points_per_input",
                value: 0.0,
            });
        }
        self.config.max_points_per_input = n;
        Ok(())
    }

    /// True when the model cap forbids any further growth: the training
    /// set has reached [`OlgaproConfig::max_model_points`] under the
    /// [`ModelBudget::StopGrowing`] policy. Batch accept hooks use this to
    /// emit over-budget fast-path results at the achieved bound instead of
    /// rerouting — with a full stop-growing model, [`process`](Olgapro::process)
    /// computes exactly what [`infer_only`](Olgapro::infer_only) already
    /// did, so accepting is byte-identical and strictly cheaper.
    pub fn model_full(&self) -> bool {
        self.config.max_model_points > 0
            && self.model.len() >= self.config.max_model_points
            && self.config.model_budget == ModelBudget::StopGrowing
    }

    /// Record a degraded-accuracy acceptance decided on a caller's fast
    /// path (the batch adapters accept over-budget results themselves when
    /// [`model_full`](Olgapro::model_full), bypassing
    /// [`process`](Olgapro::process) and its own counting).
    pub fn note_cap_hit(&mut self) {
        self.stats.cap_hits += 1;
        self.metrics.cap_hits.inc();
        self.tracer.emit(
            0,
            TraceEvent::CapHit {
                points: self.model.len() as u64,
                budget: self.config.max_model_points as u64,
            },
        );
    }

    /// True when the training set is at the cap (either policy).
    fn at_capacity(&self) -> bool {
        self.config.max_model_points > 0 && self.model.len() >= self.config.max_model_points
    }

    /// Inference-only evaluation: compute the output distribution and error
    /// bound with the *current* model, without bootstrapping, online tuning
    /// or retraining. Requires a non-empty model.
    ///
    /// This is the read-only fast path used by
    /// [`crate::parallel::ParallelOlgapro`]: at convergence it is exactly
    /// what [`Olgapro::process`] computes, and it can run concurrently
    /// against a shared model.
    pub fn infer_only(
        &self,
        input: &InputDistribution,
        rng: &mut dyn rand::RngCore,
    ) -> Result<GpOutput> {
        let mut scratch = InferScratch::default();
        self.infer_only_with(input, rng, &mut scratch)
    }

    /// [`Olgapro::infer_only`] with caller-provided scratch buffers — the
    /// allocation-free form the scheduler's fast phase runs with per-worker
    /// scratch. Identical outputs for identical RNG state; only the
    /// allocations (and the subset-factor cache warmth) differ.
    pub fn infer_only_with(
        &self,
        input: &InputDistribution,
        rng: &mut dyn rand::RngCore,
        scratch: &mut InferScratch,
    ) -> Result<GpOutput> {
        if input.dim() != self.udf.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.udf.dim(),
                found: input.dim(),
            });
        }
        if self.model.is_empty() {
            return Err(CoreError::Gp(udf_gp::GpError::EmptyModel));
        }
        let t_fast = self.metrics.fastpath_ns.enabled().then(Instant::now);
        let split = self.config.split();
        let m = self.config.samples_per_input();
        input.sample_n_into(rng, m, &mut scratch.samples);
        let bbox = BoundingBox::from_points(scratch.samples.iter().map(|s| s.as_slice()));
        let z_alpha = simultaneous_z(self.model.kernel(), &bbox, split.delta_gp);
        let eps_gp = self.infer_and_bound(&scratch.samples, &bbox, z_alpha, &mut scratch.buf)?;
        let (y_hat, y_s, y_l) = envelope_ecdfs(&scratch.buf.means, &scratch.buf.sds, z_alpha)?;
        if let Some(t0) = t_fast {
            self.metrics.fastpath_ns.record_duration(t0.elapsed());
        }
        Ok(GpOutput {
            y_hat,
            y_s,
            y_l,
            eps_gp,
            eps_mc: split.eps_mc,
            z_alpha,
            points_added: 0,
            retrained: false,
            udf_calls: 0,
        })
    }

    /// Process one uncertain input tuple (Algorithm 5).
    pub fn process(
        &mut self,
        input: &InputDistribution,
        rng: &mut dyn rand::RngCore,
    ) -> Result<GpOutput> {
        // The scratch is a field (reused across calls) but the evaluation
        // borrows `&self` while mutating it, so temporarily move it out.
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.process_with(input, rng, &mut scratch);
        self.scratch = scratch;
        out
    }

    /// [`Olgapro::process`] with caller-provided scratch buffers.
    fn process_with(
        &mut self,
        input: &InputDistribution,
        rng: &mut dyn rand::RngCore,
        scratch: &mut InferScratch,
    ) -> Result<GpOutput> {
        if input.dim() != self.udf.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.udf.dim(),
                found: input.dim(),
            });
        }
        let calls_before = self.udf.calls();
        let split = self.config.split();
        // Step 1: draw m samples (m from ε_MC, δ_MC).
        let m = self.config.samples_per_input();
        input.sample_n_into(rng, m, &mut scratch.samples);
        let samples = &scratch.samples;
        let bbox = BoundingBox::from_points(samples.iter().map(|s| s.as_slice()));

        // Bootstrap when the model is (nearly) empty: spread-out samples.
        let mut points_added = 0usize;
        while self.model.len() < self.config.bootstrap_points.max(2) {
            let idx = (self.model.len() * samples.len()) / self.config.bootstrap_points.max(2);
            let x = samples[idx.min(samples.len() - 1)].clone();
            let y = self.eval_udf(&x)?;
            self.model.add_point(x, y)?;
            self.tracer.emit(
                0,
                TraceEvent::ModelGrow {
                    points: self.model.len() as u64,
                    budget: self.config.max_model_points as u64,
                },
            );
            points_added += 1;
        }

        // Steps 2–7: inference + error bound + online tuning loop. The
        // latest means/sds live in `scratch.buf` across iterations.
        let t_tuning = self.metrics.tuning_ns.enabled().then(Instant::now);
        let z_alpha = simultaneous_z(self.model.kernel(), &bbox, split.delta_gp);
        let mut eps_gp =
            self.infer_and_bound(&scratch.samples, &bbox, z_alpha, &mut scratch.buf)?;
        while eps_gp > split.eps_gp && points_added < self.config.max_points_per_input {
            // Model-size budget: bounded per-tuple cost on long runs.
            if self.at_capacity() {
                match self.config.model_budget {
                    ModelBudget::StopGrowing => {
                        // Accept this input at the achieved bound; the
                        // degradation is counted, not silent.
                        self.stats.cap_hits += 1;
                        self.metrics.cap_hits.inc();
                        self.tracer.emit(
                            0,
                            TraceEvent::CapHit {
                                points: self.model.len() as u64,
                                budget: self.config.max_model_points as u64,
                            },
                        );
                        break;
                    }
                    ModelBudget::EvictOldest => {
                        self.model.remove_oldest()?;
                        self.tracer.emit(
                            0,
                            TraceEvent::ModelEvict {
                                points: self.model.len() as u64,
                                budget: self.config.max_model_points as u64,
                            },
                        );
                    }
                }
            }
            let pick =
                self.pick_training_sample(&scratch.samples, &scratch.buf.sds, &bbox, z_alpha, rng)?;
            let x = scratch.samples[pick].clone();
            let y = self.eval_udf(&x)?;
            self.model.add_point(x, y)?;
            self.tracer.emit(
                0,
                TraceEvent::ModelGrow {
                    points: self.model.len() as u64,
                    budget: self.config.max_model_points as u64,
                },
            );
            points_added += 1;
            eps_gp = self.infer_and_bound(&scratch.samples, &bbox, z_alpha, &mut scratch.buf)?;
        }
        if let Some(t0) = t_tuning {
            self.metrics.tuning_ns.record_duration(t0.elapsed());
        }

        // Steps 8–14: retraining decision.
        let mut retrained = false;
        if points_added > 0 {
            let do_retrain = match self.config.retrain {
                RetrainStrategy::Never => false,
                RetrainStrategy::Eager => true,
                RetrainStrategy::NewtonThreshold(dt) => {
                    self.stats.retrain_checks += 1;
                    newton_step_norm(&self.model)? > dt
                }
            };
            if do_retrain {
                let t_retrain = self.metrics.retrain_ns.enabled().then(Instant::now);
                train(&mut self.model, &TrainConfig::default())?;
                self.stats.retrains += 1;
                retrained = true;
                // Re-run inference with the new hyperparameters (step 12).
                let z2 = simultaneous_z(self.model.kernel(), &bbox, split.delta_gp);
                eps_gp = self.infer_and_bound(&scratch.samples, &bbox, z2, &mut scratch.buf)?;
                if let Some(t0) = t_retrain {
                    self.metrics.retrain_ns.record_duration(t0.elapsed());
                }
            }
        }

        self.stats.inputs += 1;
        self.stats.points_added += points_added as u64;
        self.metrics.model_points.set(self.model.len() as u64);
        self.metrics.model_size.record(self.model.len() as u64);

        let (y_hat, y_s, y_l) = envelope_ecdfs(&scratch.buf.means, &scratch.buf.sds, z_alpha)?;
        Ok(GpOutput {
            y_hat,
            y_s,
            y_l,
            eps_gp,
            eps_mc: split.eps_mc,
            z_alpha,
            points_added,
            retrained,
            udf_calls: self.udf.calls() - calls_before,
        })
    }

    /// Evaluate the UDF with finiteness checking.
    fn eval_udf(&self, x: &[f64]) -> Result<f64> {
        let y = self.udf.eval(x);
        if y.is_finite() {
            Ok(y)
        } else {
            Err(CoreError::NonFiniteUdfOutput {
                input: x.to_vec(),
                value: y,
            })
        }
    }

    /// One inference pass: blocked local (or global) prediction at every
    /// sample plus the Algorithm-3 / Prop-4.2 error bound. The per-sample
    /// means/sds are left in `buf.means` / `buf.sds`; the returned value is
    /// the error bound.
    ///
    /// All m samples are evaluated as one kernel-matrix build + one
    /// multi-RHS solve ([`udf_gp::batch`]), bit-identical to the former
    /// per-sample loop, and the subset factorization is reused via
    /// `buf.cache` when consecutive tuples select the same neighborhood.
    fn infer_and_bound(
        &self,
        samples: &[Vec<f64>],
        bbox: &BoundingBox,
        z_alpha: f64,
        buf: &mut InferBuffers,
    ) -> Result<f64> {
        // Local inference when the kernel is isotropic; global otherwise.
        // An *empty* selection is legitimate (every training point is far
        // enough that its weight is below Γ) but the local predictor needs
        // at least one point — fall back to global inference there too.
        let use_local =
            match select_local_with(&self.model, bbox, self.config.gamma, &mut buf.select) {
                Ok(_) => !buf.select.selected.is_empty(),
                Err(udf_gp::GpError::InvalidParameter { .. }) => false,
                Err(e) => return Err(e.into()),
            };
        if use_local {
            let (lp, hit) = buf.cache.get_or_build(&self.model, &buf.select.selected)?;
            if hit {
                self.metrics.lp_cache_hits.inc();
            } else {
                self.metrics.lp_cache_misses.inc();
            }
            lp.predict_batch_with(samples, &mut buf.predict, &mut buf.preds)?;
        } else {
            self.model
                .predict_batch_with(samples, &mut buf.predict, &mut buf.preds)?;
        }
        buf.means.clear();
        buf.sds.clear();
        buf.means.extend(buf.preds.iter().map(|p| p.mean));
        buf.sds.extend(buf.preds.iter().map(|p| p.var.sqrt()));
        let (y_hat, y_s, y_l) = envelope_ecdfs(&buf.means, &buf.sds, z_alpha)?;
        let eps_gp = match self.config.accuracy.metric {
            Metric::Discrepancy => {
                lambda_discrepancy_bound(&y_hat, &y_s, &y_l, self.config.accuracy.lambda)
            }
            Metric::Ks => ks_bound(&y_hat, &y_s, &y_l),
        };
        Ok(eps_gp)
    }

    /// Online tuning (§5.2): choose the sample to evaluate next.
    fn pick_training_sample(
        &mut self,
        samples: &[Vec<f64>],
        sds: &[f64],
        bbox: &BoundingBox,
        z_alpha: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<usize> {
        use rand::Rng;
        match self.tuning {
            TuningHeuristic::LargestVariance => Ok(sds
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite sds"))
                .map(|(i, _)| i)
                .expect("non-empty samples")),
            TuningHeuristic::Random => Ok(rng.gen_range(0..samples.len())),
            TuningHeuristic::OptimalGreedy => {
                // Simulate adding each candidate (subsampled for viability)
                // and keep the one with the lowest resulting error bound.
                let stride = (samples.len() / 40).max(1);
                let mut best = (0usize, f64::INFINITY);
                for i in (0..samples.len()).step_by(stride) {
                    let mut trial = GpModel::new(self.model.kernel().clone_box(), self.model.dim());
                    trial.fit(self.model.inputs().to_vec(), self.model.targets().to_vec())?;
                    // Use the current posterior mean as a stand-in value —
                    // the true value is unknown without calling the UDF.
                    let y_hat = self.model.predict_mean(&samples[i])?;
                    trial.add_point(samples[i].clone(), y_hat)?;
                    let mut means = Vec::with_capacity(samples.len());
                    let mut sds2 = Vec::with_capacity(samples.len());
                    for s in samples {
                        let p = trial.predict(s)?;
                        means.push(p.mean);
                        sds2.push(p.var.sqrt());
                    }
                    let (h, s_, l) = envelope_ecdfs(&means, &sds2, z_alpha)?;
                    let e = match self.config.accuracy.metric {
                        Metric::Discrepancy => {
                            lambda_discrepancy_bound(&h, &s_, &l, self.config.accuracy.lambda)
                        }
                        Metric::Ks => ks_bound(&h, &s_, &l),
                    };
                    if e < best.1 {
                        best = (i, e);
                    }
                }
                let _ = bbox;
                Ok(best.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccuracyRequirement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn smooth_udf() -> BlackBoxUdf {
        BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin())
    }

    fn config(eps: f64) -> OlgaproConfig {
        let acc = AccuracyRequirement::new(eps, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let mut c = OlgaproConfig::new(acc, 2.0).unwrap();
        c.init_lengthscale = 1.0;
        c
    }

    #[test]
    fn online_processing_meets_gp_budget() {
        let mut olga = Olgapro::new(smooth_udf(), config(0.2));
        let mut rng = StdRng::seed_from_u64(10);
        let split = olga.config().split();
        for i in 0..8 {
            let mu = 1.0 + 0.9 * i as f64;
            let input = InputDistribution::diagonal_gaussian(&[(mu, 0.4)]).unwrap();
            let out = olga.process(&input, &mut rng).unwrap();
            assert!(
                out.eps_gp <= split.eps_gp || out.points_added == 10,
                "input {i}: eps_gp {} budget {}",
                out.eps_gp,
                split.eps_gp
            );
        }
        assert!(olga.stats().inputs == 8);
        assert!(olga.model().len() >= 2);
    }

    #[test]
    fn converges_then_stops_calling_udf() {
        let mut olga = Olgapro::new(smooth_udf(), config(0.2));
        let mut rng = StdRng::seed_from_u64(11);
        let input = InputDistribution::diagonal_gaussian(&[(5.0, 0.4)]).unwrap();
        // Warm up on repeated similar inputs.
        for _ in 0..6 {
            olga.process(&input, &mut rng).unwrap();
        }
        let calls_before = olga.udf().calls();
        for _ in 0..4 {
            let out = olga.process(&input, &mut rng).unwrap();
            assert_eq!(out.points_added, 0, "converged model should not add points");
        }
        assert_eq!(
            olga.udf().calls(),
            calls_before,
            "no UDF calls at convergence"
        );
    }

    #[test]
    fn output_approximates_truth() {
        // Compare the OLGAPRO output CDF against a huge direct-MC reference.
        let mut olga = Olgapro::new(smooth_udf(), config(0.15));
        let mut rng = StdRng::seed_from_u64(12);
        let input = InputDistribution::diagonal_gaussian(&[(4.0, 0.3)]).unwrap();
        // Let it converge.
        let mut out = None;
        for _ in 0..6 {
            out = Some(olga.process(&input, &mut rng).unwrap());
        }
        let out = out.unwrap();

        let mc = crate::mc::McEvaluator::new(smooth_udf());
        let reference = mc
            .compute_with_samples(&input, 40_000, 0.01, &mut rng)
            .unwrap();
        let d = udf_prob::metrics::lambda_discrepancy(&out.y_hat, &reference.ecdf, 0.02);
        assert!(
            d <= 0.15,
            "λ-discrepancy to reference {d} exceeds requested ε"
        );
    }

    #[test]
    fn eager_retrains_every_time_never_retrains_never() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut cfg = config(0.2);
        cfg.retrain = RetrainStrategy::Eager;
        let mut eager = Olgapro::new(smooth_udf(), cfg.clone());
        cfg.retrain = RetrainStrategy::Never;
        let mut never = Olgapro::new(smooth_udf(), cfg);
        for i in 0..4 {
            let input =
                InputDistribution::diagonal_gaussian(&[(1.0 + 2.0 * i as f64, 0.4)]).unwrap();
            eager.process(&input, &mut rng).unwrap();
            never.process(&input, &mut rng).unwrap();
        }
        assert!(eager.stats().retrains > 0);
        assert_eq!(never.stats().retrains, 0);
        assert!(eager.stats().retrains >= never.stats().retrains);
    }

    #[test]
    fn random_tuning_adds_more_points_than_largest_variance() {
        let mut rng = StdRng::seed_from_u64(14);
        let run = |heur: TuningHeuristic, rng: &mut StdRng| -> u64 {
            let mut olga = Olgapro::new(
                BlackBoxUdf::from_fn("bumpy", 1, |x| (x[0] * 3.0).sin() + (x[0] * 7.0).cos()),
                config(0.15),
            )
            .with_tuning(heur);
            for i in 0..10 {
                let input =
                    InputDistribution::diagonal_gaussian(&[(0.5 + 0.9 * i as f64, 0.5)]).unwrap();
                olga.process(&input, rng).unwrap();
            }
            olga.stats().points_added
        };
        let lv = run(TuningHeuristic::LargestVariance, &mut rng);
        let rnd = run(TuningHeuristic::Random, &mut rng);
        // Largest-variance should need no more points (Fig. 5e trend).
        assert!(
            lv <= rnd + 2,
            "largest-variance used {lv} points, random used {rnd}"
        );
    }

    #[test]
    fn stop_growing_cap_bounds_model_and_counts_hits() {
        // A tight budget over a drifting input sequence grows the model
        // without bound; the cap must pin it and count every degraded
        // acceptance.
        let cap = 8usize;
        let mk = |cap: usize| {
            let cfg = config(0.12)
                .with_model_cap(cap, ModelBudget::StopGrowing)
                .unwrap();
            Olgapro::new(
                BlackBoxUdf::from_fn("bumpy", 1, |x| (x[0] * 3.0).sin() + (x[0] * 7.0).cos()),
                cfg,
            )
        };
        let mut capped = mk(cap);
        let mut uncapped = mk(0);
        let mut rng_a = StdRng::seed_from_u64(40);
        let mut rng_b = StdRng::seed_from_u64(40);
        for i in 0..24 {
            let input = InputDistribution::diagonal_gaussian(&[(0.4 * i as f64, 0.3)]).unwrap();
            capped.process(&input, &mut rng_a).unwrap();
            uncapped.process(&input, &mut rng_b).unwrap();
            assert!(
                capped.model().len() <= cap,
                "input {i}: model {} exceeds cap {cap}",
                capped.model().len()
            );
        }
        assert!(
            uncapped.model().len() > cap,
            "workload too easy for the test"
        );
        assert!(capped.stats().cap_hits > 0, "cap never hit");
        assert_eq!(uncapped.stats().cap_hits, 0, "uncapped run counted hits");
        assert!(
            capped.udf().calls() < uncapped.udf().calls(),
            "cap must bound training cost: {} vs {}",
            capped.udf().calls(),
            uncapped.udf().calls()
        );
    }

    #[test]
    fn evict_oldest_keeps_size_and_adapts() {
        let cap = 8usize;
        let cfg = config(0.12)
            .with_model_cap(cap, ModelBudget::EvictOldest)
            .unwrap();
        let mut olga = Olgapro::new(
            BlackBoxUdf::from_fn("bumpy", 1, |x| (x[0] * 3.0).sin() + (x[0] * 7.0).cos()),
            cfg,
        );
        let mut rng = StdRng::seed_from_u64(41);
        for i in 0..24 {
            let input = InputDistribution::diagonal_gaussian(&[(0.4 * i as f64, 0.3)]).unwrap();
            olga.process(&input, &mut rng).unwrap();
            assert!(olga.model().len() <= cap, "input {i}");
        }
        assert_eq!(olga.model().len(), cap, "churn should keep the model full");
        assert!(!olga.model_full(), "evict-oldest can always grow");
        // The surviving training points track the recent inputs, not the
        // early ones: eviction discarded the oldest region.
        let oldest_kept = olga
            .model()
            .inputs()
            .iter()
            .map(|x| x[0])
            .fold(f64::INFINITY, f64::min);
        assert!(
            oldest_kept > 1.0,
            "oldest surviving point {oldest_kept} was never evicted"
        );
    }

    #[test]
    fn full_stop_growing_process_matches_infer_only() {
        // The accept hooks rely on this: with a full stop-growing model,
        // `process` is exactly `infer_only` (same RNG stream, no mutation).
        let cfg = config(0.12)
            .with_model_cap(6, ModelBudget::StopGrowing)
            .unwrap();
        let mut olga = Olgapro::new(smooth_udf(), cfg);
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..8 {
            let input = InputDistribution::diagonal_gaussian(&[(0.9 * i as f64, 0.4)]).unwrap();
            olga.process(&input, &mut rng).unwrap();
        }
        assert!(olga.model_full(), "warm-up never filled the model");
        let input = InputDistribution::diagonal_gaussian(&[(7.7, 0.4)]).unwrap();
        let a = olga
            .infer_only(&input, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let b = olga.process(&input, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.y_hat.values(), b.y_hat.values());
        assert_eq!(a.eps_gp, b.eps_gp);
        assert_eq!(b.points_added, 0);
        assert!(!b.retrained);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_bitwise() {
        // One InferScratch carried across many tuples (what a scheduler
        // worker does) must be invisible: every output byte-identical to a
        // fresh-scratch call, including local-predictor cache hits.
        let mut olga = Olgapro::new(smooth_udf(), config(0.2));
        let mut rng = StdRng::seed_from_u64(21);
        for i in 0..8 {
            let input = InputDistribution::diagonal_gaussian(&[(0.8 * i as f64, 0.4)]).unwrap();
            olga.process(&input, &mut rng).unwrap();
        }
        let mut reused = InferScratch::default();
        // Repeat inputs so the second pass over each hits the predictor
        // cache inside the reused scratch.
        let mus = [1.0, 1.0, 4.5, 4.5, 1.0, 6.2];
        for (i, mu) in mus.into_iter().enumerate() {
            let input = InputDistribution::diagonal_gaussian(&[(mu, 0.3)]).unwrap();
            let a = olga
                .infer_only_with(&input, &mut StdRng::seed_from_u64(i as u64), &mut reused)
                .unwrap();
            let b = olga
                .infer_only(&input, &mut StdRng::seed_from_u64(i as u64))
                .unwrap();
            assert_eq!(a.y_hat.values(), b.y_hat.values(), "tuple {i} mean CDF");
            assert_eq!(a.y_s.values(), b.y_s.values(), "tuple {i} lower");
            assert_eq!(a.y_l.values(), b.y_l.values(), "tuple {i} upper");
            assert_eq!(a.eps_gp.to_bits(), b.eps_gp.to_bits(), "tuple {i} eps_gp");
            assert_eq!(a.z_alpha.to_bits(), b.z_alpha.to_bits(), "tuple {i} z");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut olga = Olgapro::new(smooth_udf(), config(0.2));
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(15);
        assert!(matches!(
            olga.process(&input, &mut rng),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }
}
