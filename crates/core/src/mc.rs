//! The Monte Carlo baseline (§2.2, Algorithm 1).
//!
//! Draw `m` input samples, evaluate the UDF on each, return the empirical
//! CDF. With `m = ln(2/δ)/(2ε²)` the result is an (ε, δ)-approximation in
//! KS distance and a (2ε, δ)-approximation in discrepancy \[23\], so the
//! sample count comes straight from the accuracy requirement.

use crate::config::AccuracyRequirement;
use crate::output::OutputDistribution;
use crate::udf::BlackBoxUdf;
use crate::{CoreError, Result};
use udf_prob::{Ecdf, InputDistribution};

/// Evaluator that computes output distributions by direct sampling.
#[derive(Debug, Clone)]
pub struct McEvaluator {
    udf: BlackBoxUdf,
}

impl McEvaluator {
    /// Wrap a UDF.
    pub fn new(udf: BlackBoxUdf) -> Self {
        McEvaluator { udf }
    }

    /// Borrow the UDF (for call accounting).
    pub fn udf(&self) -> &BlackBoxUdf {
        &self.udf
    }

    /// Algorithm 1: compute the output distribution of `f(X)` to the given
    /// accuracy.
    pub fn compute(
        &self,
        input: &InputDistribution,
        accuracy: &AccuracyRequirement,
        rng: &mut dyn rand::RngCore,
    ) -> Result<OutputDistribution> {
        let m = accuracy.mc_samples();
        self.compute_with_samples(input, m, accuracy.eps, rng)
    }

    /// Algorithm 1 with an explicit sample count (used by harnesses that
    /// sweep `m` directly).
    pub fn compute_with_samples(
        &self,
        input: &InputDistribution,
        m: usize,
        error_bound: f64,
        rng: &mut dyn rand::RngCore,
    ) -> Result<OutputDistribution> {
        if input.dim() != self.udf.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: self.udf.dim(),
                found: input.dim(),
            });
        }
        let calls_before = self.udf.calls();
        let mut outputs = Vec::with_capacity(m);
        let mut x = vec![0.0; input.dim()];
        for _ in 0..m {
            input.sample_into(rng, &mut x);
            let y = self.udf.eval(&x);
            if !y.is_finite() {
                return Err(CoreError::NonFiniteUdfOutput {
                    input: x.clone(),
                    value: y,
                });
            }
            outputs.push(y);
        }
        Ok(OutputDistribution {
            ecdf: Ecdf::new(outputs)?,
            error_bound,
            udf_calls: self.udf.calls() - calls_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Metric;
    use crate::udf::BlackBoxUdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use udf_prob::metrics::ks_to_cdf;
    use udf_prob::special::norm_cdf;

    #[test]
    fn linear_gaussian_passthrough_meets_ks_bound() {
        // f(x) = x on N(0,1): output should be N(0,1); check the KS distance
        // against the analytic CDF stays within the requested ε.
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let eval = McEvaluator::new(udf);
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
        let acc = AccuracyRequirement::new(0.05, 0.05, 0.0, Metric::Ks).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = eval.compute(&input, &acc, &mut rng).unwrap();
        assert_eq!(out.udf_calls as usize, acc.mc_samples());
        let d = ks_to_cdf(&out.ecdf, norm_cdf);
        assert!(d <= 0.05, "KS = {d}");
    }

    #[test]
    fn nonlinear_output_is_non_gaussian() {
        // f(x) = x² on N(0,1) is chi-squared(1): strongly right-skewed.
        let udf = BlackBoxUdf::from_fn("sq", 1, |x| x[0] * x[0]);
        let eval = McEvaluator::new(udf);
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
        let acc = AccuracyRequirement::new(0.05, 0.05, 0.0, Metric::Ks).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let out = eval.compute(&input, &acc, &mut rng).unwrap();
        // Median of chi-squared(1) ≈ 0.455; KS ε = 0.05 near a density of
        // ~0.47 permits a quantile error of ~0.11.
        let med = out.ecdf.quantile(0.5);
        assert!((med - 0.455).abs() < 0.15, "median {med}");
        assert!(out.ecdf.min() >= 0.0);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let udf = BlackBoxUdf::from_fn("sum", 2, |x| x[0] + x[1]);
        let eval = McEvaluator::new(udf);
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
        let acc = AccuracyRequirement::paper_default(0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            eval.compute(&input, &acc, &mut rng),
            Err(CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_udf_output_reported() {
        let udf = BlackBoxUdf::from_fn("bad", 1, |x| 1.0 / (x[0] - x[0])); // NaN
        let eval = McEvaluator::new(udf);
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            eval.compute_with_samples(&input, 10, 0.1, &mut rng),
            Err(CoreError::NonFiniteUdfOutput { .. })
        ));
    }

    #[test]
    fn discrepancy_metric_uses_more_samples() {
        // Discrepancy substitutes ε/2 into the DKW count: 4x up to ceiling.
        let acc_ks = AccuracyRequirement::new(0.1, 0.05, 0.0, Metric::Ks).unwrap();
        let acc_d = AccuracyRequirement::new(0.1, 0.05, 0.0, Metric::Discrepancy).unwrap();
        let diff = acc_d.mc_samples() as i64 - 4 * acc_ks.mc_samples() as i64;
        assert!(diff.abs() <= 4, "ratio should be ~4x, diff {diff}");
    }
}
