//! The unified two-phase batch-execution core.
//!
//! Three subsystems run the same pattern over a batch of uncertain tuples:
//! the batch-parallel evaluator ([`crate::parallel::ParallelOlgapro`]), the
//! continuous-query stream engine (`udf_stream::engine`), and the relational
//! executor's batch mode (`udf_query::Executor`). The pattern exploits the
//! structure of OLGAPRO at convergence (§5 / §8 future work):
//!
//! 1. **fast phase** — every tuple is inferred concurrently against the
//!    *frozen* model: a read-only pass (sample, local inference, error
//!    bound) that parallelizes trivially;
//! 2. **slow phase** — tuples whose result the caller rejects (typically an
//!    ε_GP budget miss) re-run sequentially, *in tuple order*, through the
//!    full model-mutating Algorithm 5.
//!
//! [`BatchScheduler`] owns that pattern once, parameterized by the pieces
//! that differ per subsystem:
//!
//! * a **seed mixer** ([`BatchOps::tuple_seed`], usually [`mix_seed`]) that
//!   derives one RNG per tuple from the batch seed — never from the worker
//!   id — so outputs are independent of thread scheduling;
//! * an **accept hook** ([`BatchOps::accept`]) mapping each fast-phase
//!   result to a [`Verdict`]: accept it, reroute it through the slow path,
//!   or drop it at fast-path cost (online filtering, §5.5);
//! * a **slow-path closure** ([`BatchOps::slow`]) that runs the sequential,
//!   model-mutating evaluation for bootstraps and reroutes.
//!
//! The fast phase runs on a **persistent worker pool**: threads are spawned
//! once per scheduler and reused across batches, pulling chunks of the
//! batch from a shared counter (chunk stealing) instead of being carved a
//! fixed shard. At stream micro-batch sizes this beats spawning a fresh
//! `std::thread::scope` per batch by a wide margin — see the
//! `stream/dispatch` axis of `crates/bench/benches/stream_throughput.rs`.
//! Each execution slot additionally owns a persistent
//! [`InferScratch`] handed to [`BatchOps::fast`],
//! so warm fast passes reuse sample buffers, kernel-matrix scratch, and the
//! per-slot local-predictor cache instead of allocating per tuple.
//!
//! ## Determinism
//!
//! Tuple `i` always sees an RNG seeded with `ops.tuple_seed(i)` and slow
//! work always folds in tuple order on the calling thread, so for a fixed
//! seed the outputs (and every model mutation) are byte-identical for any
//! worker count. Chunk stealing moves *where* fast work runs, never *what*
//! it computes.

use crate::olgapro::InferScratch;
use crate::output::GpOutput;
use crate::{CoreError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;
use udf_obs::{
    Counter, Histogram, MetricsRegistry, RerouteReason, TraceBuffer, TraceEvent, TracePhase,
};

/// The scheduler's observability handles. Purely observational: nothing
/// here feeds back into scheduling or evaluation, so outputs are
/// byte-identical with metrics wired or not. Un-wired schedulers hold the
/// [`disabled`](SchedMetrics::disabled) set, where every operation is one
/// relaxed load and a branch.
#[derive(Clone, Debug)]
pub struct SchedMetrics {
    /// Wall time of the concurrent read-only fast phase, per batch.
    pub fast_phase_ns: Histogram,
    /// Wall time of the sequential fold (accepts, filters, slow reruns),
    /// per batch.
    pub slow_phase_ns: Histogram,
    /// Time the calling thread spent waiting for pool stragglers after
    /// finishing its own share of a batch.
    pub queue_wait_ns: Histogram,
    /// Steal-able chunks dispatched across all batches.
    pub chunks: Counter,
    /// Fast-phase results accepted as-is ([`Verdict::Accept`]).
    pub accepts: Counter,
    /// Tuples rerouted through the slow path ([`Verdict::Reroute`]).
    pub reroutes: Counter,
    /// Tuples dropped at fast-path cost ([`Verdict::Filter`]).
    pub filters: Counter,
}

impl SchedMetrics {
    /// The no-op handle set (what un-wired schedulers carry).
    pub fn disabled() -> Self {
        SchedMetrics {
            fast_phase_ns: Histogram::disabled(),
            slow_phase_ns: Histogram::disabled(),
            queue_wait_ns: Histogram::disabled(),
            chunks: Counter::disabled(),
            accepts: Counter::disabled(),
            reroutes: Counter::disabled(),
            filters: Counter::disabled(),
        }
    }

    /// Handles registered under the shared `sched.*` names.
    pub fn register(reg: &MetricsRegistry) -> Self {
        SchedMetrics {
            fast_phase_ns: reg.histogram("sched.fast_phase_ns"),
            slow_phase_ns: reg.histogram("sched.slow_phase_ns"),
            queue_wait_ns: reg.histogram("sched.queue_wait_ns"),
            chunks: reg.counter("sched.chunks"),
            accepts: reg.counter("sched.verdict.accept"),
            reroutes: reg.counter("sched.verdict.reroute"),
            filters: reg.counter("sched.verdict.filter"),
        }
    }
}

/// SplitMix64-style finalizer over `(seed, stream, idx)` — the per-tuple
/// seed mixer shared by every batch subsystem.
///
/// `stream` distinguishes independent consumers of one seed (the stream
/// engine passes the query id; single-query callers pass 0); `idx` is the
/// tuple's global index. The avalanche steps ensure adjacent indices yield
/// uncorrelated RNG streams, which the previous ad-hoc
/// `seed ^ (idx * constant)` mix did not.
pub fn mix_seed(seed: u64, stream: u64, idx: u64) -> u64 {
    let mut z =
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ idx.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The accept hook's ruling on one fast-phase result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The read-only result is good: emit it as-is.
    Accept,
    /// Re-run the tuple through the sequential slow path.
    Reroute,
    /// Drop the tuple at fast-path cost (online filtering, §5.5), recording
    /// the tuple-existence-probability upper bound at the decision point.
    Filter {
        /// Upper bound on the TEP when the tuple was dropped.
        rho_upper: f64,
    },
}

/// Outcome counters for one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Tuples fully served by the parallel read-only phase.
    pub fast_path: usize,
    /// Tuples that needed the sequential slow phase (bootstrap included).
    pub slow_path: usize,
    /// Tuples dropped by the accept hook's filter verdict.
    pub filtered: usize,
}

/// What a caller plugs into [`BatchScheduler::run_two_phase`]. The
/// implementor owns the batch state (model, inputs, output sink); the
/// scheduler sequences the borrows: `&self` methods run during the
/// concurrent fast phase, `&mut self` methods run sequentially in tuple
/// order on the calling thread.
pub trait BatchOps {
    /// The seed mixer: per-tuple RNG seed for tuple `idx`. Must not depend
    /// on anything scheduling-dependent.
    fn tuple_seed(&self, idx: usize) -> u64;

    /// True when the model is cold and tuple 0 must run through the slow
    /// path *before* the fast phase, so the fast phase has a model to read.
    fn needs_bootstrap(&self) -> bool {
        false
    }

    /// Read-only fast-path evaluation of tuple `idx`; runs concurrently.
    ///
    /// `scratch` is the executing worker's private reusable buffer set,
    /// owned by the scheduler and handed to whichever worker steals the
    /// tuple — in steady state the fast phase allocates nothing per tuple.
    /// Implementations must not let the scratch contents affect results
    /// (it is a cache, keyed to stay coherent), since chunk stealing makes
    /// the tuple→worker assignment nondeterministic.
    fn fast(&self, idx: usize, rng: &mut StdRng, scratch: &mut InferScratch) -> Result<GpOutput>;

    /// Rule on a fast-path result. Called in tuple order; `&self` already
    /// reflects every slow-path mutation of earlier tuples.
    fn accept(&self, idx: usize, out: &GpOutput) -> Verdict;

    /// Emit an accepted fast-path output (sequential, tuple order).
    fn emit_fast(&mut self, idx: usize, out: GpOutput) -> Result<()>;

    /// Record a filtered tuple (sequential, tuple order). Callers without a
    /// filter verdict can keep the default no-op.
    fn emit_filtered(&mut self, idx: usize, rho_upper: f64) -> Result<()> {
        let _ = (idx, rho_upper);
        Ok(())
    }

    /// Full sequential evaluation of tuple `idx` (bootstrap and reroutes),
    /// free to mutate the model. The RNG is freshly derived from
    /// [`tuple_seed`](BatchOps::tuple_seed), exactly as the fast path's was.
    fn slow(&mut self, idx: usize, rng: &mut StdRng) -> Result<()>;
}

/// A lifetime-erased pointer to the task a [`WorkerPool`] broadcast runs.
///
/// Safety: [`WorkerPool::run`] does not return until every worker that
/// received the pointer has reported completion, so the borrow it erases
/// outlives every dereference.
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and `WorkerPool::run`
// bounds the pointer's use to the lifetime of the borrow it was cast from.
unsafe impl Send for TaskRef {}

/// One broadcast job: the task plus the completion channel.
struct Job {
    task: TaskRef,
    /// Reports `Ok` when the task ran to completion, or the panic message.
    done: mpsc::Sender<std::result::Result<(), String>>,
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Persistent worker threads, spawned once and reused across batches.
///
/// A pool of capacity `workers` owns `workers - 1` threads; the thread that
/// calls [`run`](WorkerPool::run) participates as the final worker, so
/// `workers == 1` degenerates to a plain inline call with no thread or
/// channel traffic at all.
struct WorkerPool {
    txs: Vec<mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut txs = Vec::with_capacity(workers - 1);
        let mut handles = Vec::with_capacity(workers - 1);
        for id in 0..workers - 1 {
            let (tx, rx) = mpsc::channel::<Job>();
            txs.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("udf-sched-{id}"))
                    .spawn(move || worker_loop(id, rx))
                    .expect("spawn scheduler worker"),
            );
        }
        WorkerPool {
            txs,
            handles,
            workers,
        }
    }

    /// Run `task(worker_id)` on up to `helpers` pool threads plus the
    /// caller, and wait for all of them. Dispatching fewer jobs than pool
    /// threads lets a small batch (fewer steal-able chunks than workers)
    /// skip waking threads that would find the steal counter exhausted.
    /// Returns the first panic message when any invocation panicked.
    fn run(
        &self,
        task: &(dyn Fn(usize) + Sync),
        helpers: usize,
        queue_wait: &Histogram,
    ) -> std::result::Result<(), String> {
        let caller_run =
            || catch_unwind(AssertUnwindSafe(|| task(self.workers - 1))).map_err(panic_message);
        if self.txs.is_empty() || helpers == 0 {
            return caller_run();
        }
        let (done_tx, done_rx) = mpsc::channel();
        // SAFETY: erases the borrow's lifetime. The wait loop below blocks
        // until every dispatched job has reported done, so no worker touches
        // the pointer after this function returns.
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let mut sent = 0usize;
        for tx in self.txs.iter().take(helpers) {
            let job = Job {
                task: TaskRef(erased as *const _),
                done: done_tx.clone(),
            };
            if tx.send(job).is_ok() {
                sent += 1;
            }
        }
        drop(done_tx);
        // The caller is the last worker; catch its panic too so we never
        // unwind past the wait below while threads still hold the task.
        let mut res = caller_run();
        // Straggler wait: how long the caller blocks on pool threads after
        // finishing its own share (load-imbalance signal).
        let _wait = queue_wait.span();
        for _ in 0..sent {
            match done_rx.recv() {
                Ok(Ok(())) => {}
                Ok(err) => res = res.and(err),
                Err(_) => {
                    res = res.and(Err("scheduler worker died mid-batch".to_string()));
                }
            }
        }
        res
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.txs.clear(); // closes every job channel; workers exit their loop
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(id: usize, rx: mpsc::Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        // SAFETY: see `TaskRef` — the broadcaster is blocked until `done`
        // reports, so the pointee is alive for the whole call.
        let task = unsafe { &*job.task.0 };
        let res = catch_unwind(AssertUnwindSafe(|| task(id))).map_err(panic_message);
        let _ = job.done.send(res);
    }
}

/// How many steal-able chunks each worker's share of a batch is split into.
/// More chunks smooth out per-tuple cost variance (a tuple near the model
/// boundary can be 10× its neighbors); fewer chunks cut counter traffic.
const CHUNKS_PER_WORKER: usize = 4;

/// The shared batch-execution core: a persistent worker pool plus the
/// two-phase fast/slow driver. See the [module docs](self) for the pattern.
pub struct BatchScheduler {
    pool: WorkerPool,
    /// One [`InferScratch`] per execution slot. A worker locks its own slot
    /// for each stolen chunk (never another worker's, so the mutexes are
    /// uncontended); buffers and the per-slot `LocalPredictorCache` persist
    /// across batches, which is what makes the warm fast phase
    /// allocation-free.
    scratch: Vec<Mutex<InferScratch>>,
    metrics: SchedMetrics,
    /// Structured event log. Like the metrics, purely observational: a
    /// disabled buffer (the default) costs one relaxed load per emit and
    /// events never feed back into scheduling.
    tracer: TraceBuffer,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("workers", &self.pool.workers)
            .finish()
    }
}

impl BatchScheduler {
    /// Create a scheduler with `workers` total execution slots (clamped to
    /// ≥ 1). `workers - 1` pool threads are spawned now and reused for every
    /// subsequent batch; the calling thread fills the last slot.
    pub fn new(workers: usize) -> Self {
        let pool = WorkerPool::new(workers);
        let scratch = (0..pool.workers)
            .map(|_| Mutex::new(InferScratch::default()))
            .collect();
        BatchScheduler {
            pool,
            scratch,
            metrics: SchedMetrics::disabled(),
            tracer: TraceBuffer::disabled(),
        }
    }

    /// Wire observability handles (builder form). See [`SchedMetrics`];
    /// timings and counters never affect what the scheduler computes.
    pub fn with_metrics(mut self, metrics: SchedMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Wire observability handles in place.
    pub fn set_metrics(&mut self, metrics: SchedMetrics) {
        self.metrics = metrics;
    }

    /// Wire a trace buffer (builder form). Reroute causes and fast/slow
    /// phase brackets are emitted on lane 0 (the sequential fold runs on
    /// the calling thread); events never affect scheduling.
    pub fn with_tracer(mut self, tracer: TraceBuffer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Wire a trace buffer in place.
    pub fn set_tracer(&mut self, tracer: TraceBuffer) {
        self.tracer = tracer;
    }

    /// The wired trace buffer (a disabled no-op buffer when un-wired).
    pub fn tracer(&self) -> &TraceBuffer {
        &self.tracer
    }

    /// Total execution slots (pool threads + the calling thread).
    pub fn workers(&self) -> usize {
        self.pool.workers
    }

    /// Evaluate `f(i)` for every `i in 0..n` across the pool and return the
    /// results in index order. Workers steal chunks from a shared counter,
    /// so placement is dynamic but `out[i]` is always `f(i)`.
    ///
    /// Returns [`CoreError::WorkerPanicked`] when any invocation of `f`
    /// panicked (the panic is contained; the pool stays usable).
    pub fn try_map<T, F>(&self, n: usize, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_map_indexed(n, |_worker, i| f(i))
    }

    /// [`try_map`](Self::try_map) variant whose closure also receives the
    /// executing worker's slot id (`0..workers`) — the key into per-worker
    /// state such as the scheduler-owned [`InferScratch`] pool or a
    /// per-lane [`TraceBuffer`] ring. Placement is still dynamic (chunk
    /// stealing), so the worker id must only select *which cache or lane*
    /// to use, never affect the computed value.
    pub fn try_map_indexed<T, F>(&self, n: usize, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        let slots: Mutex<Vec<Option<T>>> =
            Mutex::new(std::iter::repeat_with(|| None).take(n).collect());
        let next = AtomicUsize::new(0);
        let chunk = n.div_ceil(self.pool.workers * CHUNKS_PER_WORKER).max(1);
        // Wake only as many pool threads as there are chunks to steal
        // (minus the caller's slot): a 2-tuple batch on an 8-worker pool
        // should not pay 7 wake-ups.
        let helpers = n.div_ceil(chunk).saturating_sub(1);
        self.metrics.chunks.add(n.div_ceil(chunk) as u64);
        let task = |worker: usize| loop {
            let lo = next.fetch_add(chunk, Ordering::Relaxed);
            if lo >= n {
                break;
            }
            let hi = (lo + chunk).min(n);
            // Evaluate outside the lock; only the moves happen under it.
            let vals: Vec<(usize, T)> = (lo..hi).map(|i| (i, f(worker, i))).collect();
            let mut guard = slots.lock().expect("result mutex");
            for (i, v) in vals {
                guard[i] = Some(v);
            }
        };
        match self.pool.run(&task, helpers, &self.metrics.queue_wait_ns) {
            Ok(()) => Ok(slots
                .into_inner()
                .expect("result mutex")
                .into_iter()
                .map(|slot| slot.expect("every index filled"))
                .collect()),
            Err(message) => Err(CoreError::WorkerPanicked { message }),
        }
    }

    /// Drive one batch of `n` tuples through the two-phase pattern:
    ///
    /// 1. if [`BatchOps::needs_bootstrap`], tuple 0 runs the slow path
    ///    sequentially so the fast phase has a model to read;
    /// 2. the remaining tuples run [`BatchOps::fast`] concurrently on the
    ///    pool, each with an RNG from [`BatchOps::tuple_seed`];
    /// 3. results fold sequentially in tuple order: the accept hook rules
    ///    [`Accept`](Verdict::Accept) / [`Filter`](Verdict::Filter) /
    ///    [`Reroute`](Verdict::Reroute), and rerouted tuples (plus any
    ///    tuple whose fast pass hit an empty model) re-run via
    ///    [`BatchOps::slow`].
    pub fn run_two_phase<O>(&self, ops: &mut O, n: usize) -> Result<BatchStats>
    where
        O: BatchOps + Sync,
    {
        let mut stats = BatchStats::default();
        if n == 0 {
            return Ok(stats);
        }
        let mut start = 0usize;
        if ops.needs_bootstrap() {
            self.tracer.emit(
                0,
                TraceEvent::Reroute {
                    tuple: 0,
                    reason: RerouteReason::Forced,
                },
            );
            slow_tuple(ops, 0, &mut stats)?;
            start = 1;
            if start == n {
                return Ok(stats);
            }
        }

        // Phase 1: parallel read-only inference against the frozen model.
        let shared: &O = ops;
        let t_fast = self.metrics.fast_phase_ns.enabled().then(Instant::now);
        self.tracer.emit(
            0,
            TraceEvent::PhaseStart {
                phase: TracePhase::Fast,
            },
        );
        let inferred: Vec<Result<GpOutput>> = self.try_map_indexed(n - start, |worker, i| {
            let idx = start + i;
            let mut rng = StdRng::seed_from_u64(shared.tuple_seed(idx));
            // Each worker locks only its own slot, so this never contends.
            // A contained panic (see `try_map`) may poison the slot; the
            // scratch is only caches and buffers whose reuse is keyed for
            // coherence, so recovering the inner value is always safe.
            let mut scratch = self.scratch[worker]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            shared.fast(idx, &mut rng, &mut scratch)
        })?;
        self.tracer.emit(
            0,
            TraceEvent::PhaseEnd {
                phase: TracePhase::Fast,
            },
        );
        if let Some(t0) = t_fast {
            self.metrics.fast_phase_ns.record_duration(t0.elapsed());
        }

        // Phase 2: sequential fold in tuple order.
        let _slow_span = self.metrics.slow_phase_ns.span();
        self.tracer.emit(
            0,
            TraceEvent::PhaseStart {
                phase: TracePhase::Slow,
            },
        );
        for (i, res) in inferred.into_iter().enumerate() {
            let idx = start + i;
            match res {
                Ok(out) => match ops.accept(idx, &out) {
                    Verdict::Accept => {
                        self.metrics.accepts.inc();
                        ops.emit_fast(idx, out)?;
                        stats.fast_path += 1;
                    }
                    Verdict::Filter { rho_upper } => {
                        self.metrics.filters.inc();
                        ops.emit_filtered(idx, rho_upper)?;
                        stats.filtered += 1;
                    }
                    Verdict::Reroute => {
                        self.metrics.reroutes.inc();
                        self.tracer.emit(
                            0,
                            TraceEvent::Reroute {
                                tuple: idx as u64,
                                reason: RerouteReason::AccuracyMiss,
                            },
                        );
                        slow_tuple(ops, idx, &mut stats)?;
                    }
                },
                // A racing reader can see the pre-bootstrap empty model only
                // when there is no bootstrap tuple in this batch; route it
                // through the slow path like any other miss.
                Err(CoreError::Gp(udf_gp::GpError::EmptyModel)) => {
                    self.metrics.reroutes.inc();
                    self.tracer.emit(
                        0,
                        TraceEvent::Reroute {
                            tuple: idx as u64,
                            reason: RerouteReason::ColdModel,
                        },
                    );
                    slow_tuple(ops, idx, &mut stats)?
                }
                Err(e) => return Err(e),
            }
        }
        self.tracer.emit(
            0,
            TraceEvent::PhaseEnd {
                phase: TracePhase::Slow,
            },
        );
        Ok(stats)
    }
}

/// Run one tuple through the slow path with its canonical RNG.
fn slow_tuple<O: BatchOps>(ops: &mut O, idx: usize, stats: &mut BatchStats) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(ops.tuple_seed(idx));
    ops.slow(idx, &mut rng)?;
    stats.slow_path += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn mix_seed_varies_with_every_input() {
        let s = mix_seed(1, 2, 3);
        assert_ne!(s, mix_seed(2, 2, 3));
        assert_ne!(s, mix_seed(1, 3, 3));
        assert_ne!(s, mix_seed(1, 2, 4));
        assert_eq!(s, mix_seed(1, 2, 3));
    }

    #[test]
    fn mix_seed_decorrelates_adjacent_indices() {
        // The weak multiplier mix this replaced flipped only low bits
        // between adjacent indices; the finalizer must flip about half.
        for idx in 0..64u64 {
            let a = mix_seed(7, 0, idx);
            let b = mix_seed(7, 0, idx + 1);
            let flipped = (a ^ b).count_ones();
            assert!((8..=56).contains(&flipped), "idx {idx}: {flipped} bits");
        }
    }

    #[test]
    fn try_map_is_index_ordered_for_any_worker_count() {
        for workers in [1usize, 2, 3, 8] {
            let sched = BatchScheduler::new(workers);
            let out = sched.try_map(100, |i| i * i).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_map_reuses_the_pool_across_batches() {
        let sched = BatchScheduler::new(4);
        for round in 0..50usize {
            let out = sched.try_map(17, |i| i + round).unwrap();
            assert_eq!(out[16], 16 + round);
        }
    }

    #[test]
    fn try_map_contains_panics_and_pool_survives() {
        let sched = BatchScheduler::new(4);
        let err = sched
            .try_map(32, |i| if i == 13 { panic!("boom") } else { i })
            .unwrap_err();
        match &err {
            CoreError::WorkerPanicked { message } => {
                assert!(message.contains("boom"), "payload lost: {message:?}")
            }
            other => panic!("expected WorkerPanicked, got {other}"),
        }
        // The pool must stay usable after a contained panic.
        let out = sched.try_map(8, |i| i).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn try_map_empty_is_fine() {
        let sched = BatchScheduler::new(2);
        let out: Vec<usize> = sched.try_map(0, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_stealing_covers_every_index_exactly_once() {
        let sched = BatchScheduler::new(8);
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        sched
            .try_map(257, |i| hits[i].fetch_add(1, Ordering::Relaxed))
            .unwrap();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }
}
