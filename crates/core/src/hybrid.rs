//! The hybrid MC/GP solution (§5.4, rules calibrated in §6.3).
//!
//! Function complexity and evaluation time are unknown up front, so the
//! hybrid evaluator explores them on the fly: it measures the UDF's
//! evaluation time while collecting training data, runs the GP to
//! convergence, measures its per-input inference time, and then commits to
//! whichever approach is cheaper. A rule-based shortcut encodes the paper's
//! §6.3 findings for callers that know `T` and `d` in advance.

use crate::config::OlgaproConfig;
use crate::olgapro::Olgapro;
use crate::output::OutputDistribution;
use crate::udf::BlackBoxUdf;
use crate::McEvaluator;
use crate::Result;
use std::time::{Duration, Instant};
use udf_prob::InputDistribution;

/// Which approach the hybrid evaluator selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridChoice {
    /// Direct Monte Carlo sampling.
    Mc,
    /// GP emulation via OLGAPRO.
    Gp,
    /// Still calibrating (both are exercised).
    Calibrating,
}

/// The paper's §6.3 decision rules from known dimensionality and (nominal)
/// evaluation time: MC for very fast functions, GP for slow low-dimensional
/// ones, MC for very high-dimensional ones unless the UDF is extremely slow.
pub fn rule_based_choice(dim: usize, eval_time: Duration) -> HybridChoice {
    let t = eval_time.as_secs_f64();
    if t <= 10e-6 {
        return HybridChoice::Mc; // "T ≤ 0.01ms → MC"
    }
    if dim <= 2 && t >= 1e-3 {
        return HybridChoice::Gp; // low-dim, ≥ 1 ms → GP
    }
    if dim <= 2 && t >= 1e-4 {
        return HybridChoice::Gp; // simple functions win from 0.1 ms
    }
    if dim >= 10 {
        // very high-dimensional: GP only for ≥ 100 ms functions
        return if t >= 0.1 {
            HybridChoice::Gp
        } else {
            HybridChoice::Mc
        };
    }
    // mid-dimensional: GP from ~10 ms
    if t >= 10e-3 {
        HybridChoice::Gp
    } else {
        HybridChoice::Mc
    }
}

/// A measuring hybrid evaluator: runs both approaches during a calibration
/// window, then commits to the cheaper one.
#[derive(Debug)]
pub struct HybridEvaluator {
    mc: McEvaluator,
    olgapro: Olgapro,
    calibration_inputs: usize,
    seen: usize,
    mc_time: Duration,
    gp_time: Duration,
    committed: Option<HybridChoice>,
}

impl HybridEvaluator {
    /// Create with a calibration window of `calibration_inputs` tuples.
    pub fn new(udf: BlackBoxUdf, config: OlgaproConfig, calibration_inputs: usize) -> Self {
        HybridEvaluator {
            mc: McEvaluator::new(udf.clone()),
            olgapro: Olgapro::new(udf, config),
            calibration_inputs: calibration_inputs.max(1),
            seen: 0,
            mc_time: Duration::ZERO,
            gp_time: Duration::ZERO,
            committed: None,
        }
    }

    /// The current decision state.
    pub fn choice(&self) -> HybridChoice {
        self.committed.unwrap_or(HybridChoice::Calibrating)
    }

    /// Measured cumulative times (calibration window) as
    /// `(mc_including_cost, gp_including_cost)`.
    pub fn measured(&self) -> (Duration, Duration) {
        (self.mc_time, self.gp_time)
    }

    /// Process one input. During calibration both approaches run and are
    /// timed (wall time + charged nominal UDF cost); afterwards only the
    /// winner runs.
    pub fn process(
        &mut self,
        input: &InputDistribution,
        rng: &mut dyn rand::RngCore,
    ) -> Result<OutputDistribution> {
        match self.committed {
            Some(HybridChoice::Mc) => {
                self.mc
                    .compute(input, &self.olgapro.config().accuracy.clone(), rng)
            }
            Some(HybridChoice::Gp) | Some(HybridChoice::Calibrating) => {
                Ok(self.olgapro.process(input, rng)?.into_distribution())
            }
            None => {
                let per_call = self.mc.udf().cost_model().per_call();
                // Time the GP path.
                let calls0 = self.olgapro.udf().calls();
                let t0 = Instant::now();
                let gp_out = self.olgapro.process(input, rng)?;
                self.gp_time +=
                    t0.elapsed() + per_call * (self.olgapro.udf().calls() - calls0) as u32;
                // Time the MC path.
                let calls1 = self.mc.udf().calls();
                let t1 = Instant::now();
                let accuracy = self.olgapro.config().accuracy;
                let _ = self.mc.compute(input, &accuracy, rng)?;
                self.mc_time += t1.elapsed() + per_call * (self.mc.udf().calls() - calls1) as u32;

                self.seen += 1;
                if self.seen >= self.calibration_inputs {
                    self.committed = Some(if self.gp_time <= self.mc_time {
                        HybridChoice::Gp
                    } else {
                        HybridChoice::Mc
                    });
                }
                Ok(gp_out.into_distribution())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccuracyRequirement, Metric};
    use crate::udf::CostModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rules_match_paper_findings() {
        // Expt 5: GP wins from 0.1 ms for simple (low-dim) functions.
        assert_eq!(
            rule_based_choice(1, Duration::from_micros(1)),
            HybridChoice::Mc
        );
        assert_eq!(
            rule_based_choice(1, Duration::from_millis(1)),
            HybridChoice::Gp
        );
        assert_eq!(
            rule_based_choice(2, Duration::from_micros(200)),
            HybridChoice::Gp
        );
        // Expt 7: d = 10 needs T ≥ 0.1 s.
        assert_eq!(
            rule_based_choice(10, Duration::from_millis(10)),
            HybridChoice::Mc
        );
        assert_eq!(
            rule_based_choice(10, Duration::from_millis(200)),
            HybridChoice::Gp
        );
        // Mid-dimensional crossover around 10 ms.
        assert_eq!(
            rule_based_choice(5, Duration::from_millis(1)),
            HybridChoice::Mc
        );
        assert_eq!(
            rule_based_choice(5, Duration::from_millis(50)),
            HybridChoice::Gp
        );
    }

    #[test]
    fn measured_hybrid_picks_gp_for_expensive_udf() {
        // 2 ms simulated per call: MC needs thousands of calls per input,
        // the converged GP almost none.
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin())
            .with_cost(CostModel::Simulated(Duration::from_millis(2)));
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        let mut hybrid = HybridEvaluator::new(udf, cfg, 3);
        let mut rng = StdRng::seed_from_u64(30);
        for i in 0..5 {
            let input = InputDistribution::diagonal_gaussian(&[(2.0 + i as f64, 0.4)]).unwrap();
            hybrid.process(&input, &mut rng).unwrap();
        }
        assert_eq!(hybrid.choice(), HybridChoice::Gp);
        let (mc_t, gp_t) = hybrid.measured();
        assert!(gp_t < mc_t, "GP {gp_t:?} should beat MC {mc_t:?}");
    }

    #[test]
    fn measured_hybrid_picks_mc_for_free_udf() {
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        let mut hybrid = HybridEvaluator::new(udf, cfg, 3);
        let mut rng = StdRng::seed_from_u64(31);
        for i in 0..5 {
            let input = InputDistribution::diagonal_gaussian(&[(2.0 + i as f64, 0.4)]).unwrap();
            hybrid.process(&input, &mut rng).unwrap();
        }
        assert_eq!(hybrid.choice(), HybridChoice::Mc);
    }
}
