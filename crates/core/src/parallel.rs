//! Parallel stream processing — the paper's stated future work (§8:
//! "consider to extend our techniques to allow for parallel processing for
//! high performance").
//!
//! The design exploits the structure of OLGAPRO at convergence: processing a
//! tuple is then a *read-only* pass (sample, local inference, error bound)
//! against a fixed model, which parallelizes trivially. Only the occasional
//! tuple whose error bound misses the budget needs the mutable path (online
//! tuning / retraining). Each batch therefore runs in two phases:
//!
//! 1. **parallel phase** — all tuples inferred concurrently against the
//!    shared immutable model (crossbeam scoped threads, one RNG per tuple
//!    derived from the batch seed so results are independent of scheduling);
//! 2. **sequential phase** — tuples that missed the ε_GP budget are re-run
//!    through the full Algorithm 5 with tuning enabled.
//!
//! At steady state phase 2 is empty and the speedup approaches the worker
//! count; on a cold model the behaviour (and output) degrades gracefully to
//! the sequential algorithm.

use crate::olgapro::Olgapro;
use crate::output::GpOutput;
use crate::{CoreError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use udf_prob::InputDistribution;

/// Batch-parallel wrapper around [`Olgapro`].
#[derive(Debug)]
pub struct ParallelOlgapro {
    inner: Olgapro,
    workers: usize,
}

/// Outcome counters for one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Tuples fully served by the parallel read-only phase.
    pub fast_path: usize,
    /// Tuples that needed the sequential tuning phase.
    pub slow_path: usize,
}

impl ParallelOlgapro {
    /// Wrap a (possibly pre-warmed) OLGAPRO instance with `workers` threads.
    pub fn new(inner: Olgapro, workers: usize) -> Self {
        ParallelOlgapro {
            inner,
            workers: workers.max(1),
        }
    }

    /// Borrow the wrapped evaluator.
    pub fn inner(&self) -> &Olgapro {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> Olgapro {
        self.inner
    }

    /// Process a batch of tuples. `seed` derives one RNG per tuple, so the
    /// output for a given `(batch, seed)` does not depend on thread timing.
    pub fn process_batch(
        &mut self,
        inputs: &[InputDistribution],
        seed: u64,
    ) -> Result<(Vec<GpOutput>, BatchStats)> {
        let mut outputs: Vec<Option<GpOutput>> = Vec::with_capacity(inputs.len());
        outputs.resize_with(inputs.len(), || None);
        let mut stats = BatchStats::default();

        // Cold model: run the first tuple sequentially to bootstrap.
        let mut start = 0;
        if self.inner.model().is_empty() {
            if let Some(first) = inputs.first() {
                let mut rng = StdRng::seed_from_u64(seed);
                outputs[0] = Some(self.inner.process(first, &mut rng)?);
                stats.slow_path += 1;
                start = 1;
            }
        }

        // Phase 1: parallel read-only inference.
        let pending = &inputs[start..];
        if !pending.is_empty() {
            let chunk = pending.len().div_ceil(self.workers);
            let inner = &self.inner;
            let results: Vec<(usize, Result<GpOutput>)> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (w, chunk_inputs) in pending.chunks(chunk).enumerate() {
                    let base = start + w * chunk;
                    handles.push(scope.spawn(move || {
                        chunk_inputs
                            .iter()
                            .enumerate()
                            .map(|(i, input)| {
                                let idx = base + i;
                                let mut rng =
                                    StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37));
                                (idx, inner.infer_only(input, &mut rng))
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            // Phase 2: sequential tuning for budget misses.
            let eps_gp_budget = self.inner.config().split().eps_gp;
            for (idx, res) in results {
                match res {
                    Ok(out) if out.eps_gp <= eps_gp_budget => {
                        outputs[idx] = Some(out);
                        stats.fast_path += 1;
                    }
                    Ok(_) | Err(CoreError::Gp(udf_gp::GpError::EmptyModel)) => {
                        let mut rng =
                            StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37));
                        outputs[idx] = Some(self.inner.process(&inputs[idx], &mut rng)?);
                        stats.slow_path += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        Ok((
            outputs
                .into_iter()
                .map(|o| o.expect("every index filled"))
                .collect(),
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccuracyRequirement, Metric, OlgaproConfig};
    use crate::udf::BlackBoxUdf;
    use udf_prob::InputDistribution;

    fn setup(eps: f64) -> Olgapro {
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let acc = AccuracyRequirement::new(eps, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        Olgapro::new(udf, cfg)
    }

    fn inputs(n: usize) -> Vec<InputDistribution> {
        (0..n)
            .map(|i| {
                InputDistribution::diagonal_gaussian(&[(1.0 + 0.8 * i as f64 % 8.0, 0.4)]).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_results_match_accuracy_budget() {
        let mut par = ParallelOlgapro::new(setup(0.2), 4);
        let batch = inputs(10);
        let (outs, stats) = par.process_batch(&batch, 7).unwrap();
        assert_eq!(outs.len(), 10);
        assert_eq!(stats.fast_path + stats.slow_path, 10);
        let budget = par.inner().config().split().eps_gp;
        for out in &outs {
            assert!(
                out.eps_gp <= budget || out.points_added == 10,
                "eps_gp {} exceeds budget {budget}",
                out.eps_gp
            );
        }
    }

    #[test]
    fn warm_batches_take_fast_path() {
        let mut par = ParallelOlgapro::new(setup(0.2), 4);
        let batch = inputs(8);
        par.process_batch(&batch, 1).unwrap();
        par.process_batch(&batch, 2).unwrap();
        let (_, stats) = par.process_batch(&batch, 3).unwrap();
        assert!(
            stats.fast_path >= 7,
            "converged batch should be almost all fast-path: {stats:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ParallelOlgapro::new(setup(0.2), 2);
        let mut b = ParallelOlgapro::new(setup(0.2), 8);
        let batch = inputs(6);
        // Warm both identically (sequential bootstrap shares the seed).
        a.process_batch(&batch, 11).unwrap();
        b.process_batch(&batch, 11).unwrap();
        let (oa, _) = a.process_batch(&batch, 12).unwrap();
        let (ob, _) = b.process_batch(&batch, 12).unwrap();
        for (x, y) in oa.iter().zip(&ob) {
            // Same seed, different worker counts → identical outputs as long
            // as both batches were all fast-path.
            if x.points_added == 0 && y.points_added == 0 {
                assert_eq!(x.y_hat.values(), y.y_hat.values());
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut par = ParallelOlgapro::new(setup(0.2), 4);
        let (outs, stats) = par.process_batch(&[], 1).unwrap();
        assert!(outs.is_empty());
        assert_eq!(stats, BatchStats::default());
    }
}
