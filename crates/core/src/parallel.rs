//! Parallel stream processing — the paper's stated future work (§8:
//! "consider to extend our techniques to allow for parallel processing for
//! high performance").
//!
//! The design exploits the structure of OLGAPRO at convergence: processing a
//! tuple is then a *read-only* pass (sample, local inference, error bound)
//! against a fixed model, which parallelizes trivially. Only the occasional
//! tuple whose error bound misses the budget needs the mutable path (online
//! tuning / retraining).
//!
//! The actual two-phase machinery lives in [`crate::sched`], shared with the
//! stream engine and the relational executor; [`ParallelOlgapro`] is the
//! thin single-query adapter: fast path = [`Olgapro::infer_only`], accept =
//! "ε_GP within budget", slow path = the full [`Olgapro::process`]. At
//! steady state the slow phase is empty and the speedup approaches the
//! worker count; on a cold model the behaviour (and output) degrades
//! gracefully to the sequential algorithm.

use crate::olgapro::{InferScratch, Olgapro};
use crate::output::GpOutput;
use crate::sched::{mix_seed, BatchOps, BatchScheduler, Verdict};
use crate::Result;
use rand::rngs::StdRng;
use udf_prob::InputDistribution;

pub use crate::sched::BatchStats;

/// Batch-parallel wrapper around [`Olgapro`], built on the shared
/// [`BatchScheduler`] worker pool (threads persist across batches).
#[derive(Debug)]
pub struct ParallelOlgapro {
    inner: Olgapro,
    sched: BatchScheduler,
}

/// [`BatchOps`] adapter: one batch of plain (unfiltered) GP evaluation.
struct OlgaproBatch<'a> {
    olga: &'a mut Olgapro,
    inputs: &'a [InputDistribution],
    seed: u64,
    eps_gp_budget: f64,
    outputs: Vec<Option<GpOutput>>,
}

impl BatchOps for OlgaproBatch<'_> {
    fn tuple_seed(&self, idx: usize) -> u64 {
        mix_seed(self.seed, 0, idx as u64)
    }

    fn needs_bootstrap(&self) -> bool {
        self.olga.model().is_empty()
    }

    fn fast(&self, idx: usize, rng: &mut StdRng, scratch: &mut InferScratch) -> Result<GpOutput> {
        self.olga.infer_only_with(&self.inputs[idx], rng, scratch)
    }

    fn accept(&self, _idx: usize, out: &GpOutput) -> Verdict {
        // A full stop-growing model accepts at the achieved bound: the
        // slow path could neither tune nor change the result (`process`
        // degenerates to `infer_only` there), so rerouting would only pay
        // a second inference pass for byte-identical output.
        if out.eps_gp <= self.eps_gp_budget || self.olga.model_full() {
            Verdict::Accept
        } else {
            Verdict::Reroute
        }
    }

    fn emit_fast(&mut self, idx: usize, out: GpOutput) -> Result<()> {
        if out.eps_gp > self.eps_gp_budget {
            // Only reachable via the model-full acceptance above.
            self.olga.note_cap_hit();
        }
        self.outputs[idx] = Some(out);
        Ok(())
    }

    fn emit_filtered(&mut self, idx: usize, _rho_upper: f64) -> Result<()> {
        // This adapter's accept hook never filters; a Filter verdict would
        // leave `outputs[idx]` unfilled and panic later at the unwrap.
        unreachable!("ParallelOlgapro never filters (tuple {idx})")
    }

    fn slow(&mut self, idx: usize, rng: &mut StdRng) -> Result<()> {
        self.outputs[idx] = Some(self.olga.process(&self.inputs[idx], rng)?);
        Ok(())
    }
}

impl ParallelOlgapro {
    /// Wrap a (possibly pre-warmed) OLGAPRO instance with `workers` threads.
    pub fn new(inner: Olgapro, workers: usize) -> Self {
        ParallelOlgapro {
            inner,
            sched: BatchScheduler::new(workers),
        }
    }

    /// Borrow the wrapped evaluator.
    pub fn inner(&self) -> &Olgapro {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> Olgapro {
        self.inner
    }

    /// Worker slots of the underlying scheduler.
    pub fn workers(&self) -> usize {
        self.sched.workers()
    }

    /// Process a batch of tuples. `seed` derives one RNG per tuple (via
    /// [`mix_seed`]), so the output for a given `(batch, seed)` does not
    /// depend on thread timing or worker count.
    pub fn process_batch(
        &mut self,
        inputs: &[InputDistribution],
        seed: u64,
    ) -> Result<(Vec<GpOutput>, BatchStats)> {
        let eps_gp_budget = self.inner.config().split().eps_gp;
        let mut ops = OlgaproBatch {
            olga: &mut self.inner,
            inputs,
            seed,
            eps_gp_budget,
            outputs: std::iter::repeat_with(|| None).take(inputs.len()).collect(),
        };
        let stats = self.sched.run_two_phase(&mut ops, inputs.len())?;
        Ok((
            ops.outputs
                .into_iter()
                .map(|o| o.expect("every index filled"))
                .collect(),
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccuracyRequirement, Metric, OlgaproConfig};
    use crate::udf::BlackBoxUdf;
    use udf_prob::InputDistribution;

    fn setup(eps: f64) -> Olgapro {
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let acc = AccuracyRequirement::new(eps, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        Olgapro::new(udf, cfg)
    }

    fn inputs(n: usize) -> Vec<InputDistribution> {
        (0..n)
            .map(|i| {
                InputDistribution::diagonal_gaussian(&[(1.0 + 0.8 * i as f64 % 8.0, 0.4)]).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_results_match_accuracy_budget() {
        let mut par = ParallelOlgapro::new(setup(0.2), 4);
        let batch = inputs(10);
        let (outs, stats) = par.process_batch(&batch, 7).unwrap();
        assert_eq!(outs.len(), 10);
        assert_eq!(stats.fast_path + stats.slow_path, 10);
        assert_eq!(stats.filtered, 0, "no filter hook on this path");
        let budget = par.inner().config().split().eps_gp;
        for out in &outs {
            assert!(
                out.eps_gp <= budget || out.points_added == 10,
                "eps_gp {} exceeds budget {budget}",
                out.eps_gp
            );
        }
    }

    #[test]
    fn warm_batches_take_fast_path() {
        let mut par = ParallelOlgapro::new(setup(0.2), 4);
        let batch = inputs(8);
        par.process_batch(&batch, 1).unwrap();
        par.process_batch(&batch, 2).unwrap();
        let (_, stats) = par.process_batch(&batch, 3).unwrap();
        assert!(
            stats.fast_path >= 7,
            "converged batch should be almost all fast-path: {stats:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ParallelOlgapro::new(setup(0.2), 2);
        let mut b = ParallelOlgapro::new(setup(0.2), 8);
        let batch = inputs(6);
        // Warm both identically until the model converges (the warm-up
        // batches share seeds, so the two models evolve in lock-step).
        for seed in 11..16 {
            a.process_batch(&batch, seed).unwrap();
            b.process_batch(&batch, seed).unwrap();
        }
        let (oa, sa) = a.process_batch(&batch, 99).unwrap();
        let (ob, sb) = b.process_batch(&batch, 99).unwrap();
        assert_eq!(sa, sb, "routing must not depend on worker count");
        assert_eq!(
            sa.slow_path, 0,
            "warm-up insufficient: still tuning after 5 batches"
        );
        // Same seed, different worker counts → identical outputs, with no
        // slow-path escape hatch: every tuple must agree.
        for (i, (x, y)) in oa.iter().zip(&ob).enumerate() {
            assert_eq!(x.y_hat.values(), y.y_hat.values(), "tuple {i} mean CDF");
            assert_eq!(x.y_s.values(), y.y_s.values(), "tuple {i} lower envelope");
            assert_eq!(x.y_l.values(), y.y_l.values(), "tuple {i} upper envelope");
            assert_eq!(x.eps_gp, y.eps_gp, "tuple {i} error bound");
        }
    }

    #[test]
    fn cold_batches_are_also_deterministic() {
        // Stronger than the old guarantee: even bootstrap + slow-path
        // (model-mutating) batches are byte-identical across worker counts,
        // because slow work folds in tuple order with per-tuple seeds.
        let batch = inputs(6);
        let mut a = ParallelOlgapro::new(setup(0.2), 2);
        let mut b = ParallelOlgapro::new(setup(0.2), 8);
        let (oa, sa) = a.process_batch(&batch, 11).unwrap();
        let (ob, sb) = b.process_batch(&batch, 11).unwrap();
        assert_eq!(sa, sb);
        assert!(sa.slow_path > 0, "cold batch must exercise the slow path");
        for (i, (x, y)) in oa.iter().zip(&ob).enumerate() {
            assert_eq!(x.y_hat.values(), y.y_hat.values(), "tuple {i}");
        }
    }

    #[test]
    fn full_model_accepts_on_the_fast_path_identically_for_any_workers() {
        use crate::config::ModelBudget;
        let cap = 8usize;
        let run = |workers: usize| {
            let mut olga = setup(0.12);
            olga.set_model_cap(cap, ModelBudget::StopGrowing).unwrap();
            let mut par = ParallelOlgapro::new(olga, workers);
            let batch: Vec<InputDistribution> = (0..24)
                .map(|i| InputDistribution::diagonal_gaussian(&[(0.5 * i as f64, 0.3)]).unwrap())
                .collect();
            par.process_batch(&batch, 5).unwrap();
            let (outs, stats) = par.process_batch(&batch, 6).unwrap();
            (outs, stats, par)
        };
        let (o2, s2, p2) = run(2);
        let (o8, s8, p8) = run(8);
        assert!(p2.inner().model().len() <= cap, "cap overshoot");
        assert!(
            p2.inner().model_full(),
            "workload too easy: cap never reached"
        );
        assert!(
            p2.inner().stats().cap_hits > 0,
            "degraded accepts not counted"
        );
        assert_eq!(
            s2.slow_path, 0,
            "a full stop-growing model must not reroute: {s2:?}"
        );
        assert_eq!(s2, s8, "routing must not depend on worker count");
        assert_eq!(p2.inner().stats().cap_hits, p8.inner().stats().cap_hits);
        for (i, (x, y)) in o2.iter().zip(&o8).enumerate() {
            assert_eq!(x.y_hat.values(), y.y_hat.values(), "tuple {i}");
            assert_eq!(x.eps_gp, y.eps_gp, "tuple {i}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut par = ParallelOlgapro::new(setup(0.2), 4);
        let (outs, stats) = par.process_batch(&[], 1).unwrap();
        assert!(outs.is_empty());
        assert_eq!(stats, BatchStats::default());
    }
}
