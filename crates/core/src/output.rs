//! Result distributions returned to the user.

use udf_prob::Ecdf;

/// The distribution of `Y = f(X)` computed by some evaluator, with the
/// total error bound that held during computation.
#[derive(Debug, Clone)]
pub struct OutputDistribution {
    /// Empirical CDF of the output samples.
    pub ecdf: Ecdf,
    /// Total error bound ε under the requested metric (MC share + GP share;
    /// for plain MC this is the DKW ε).
    pub error_bound: f64,
    /// Number of UDF calls spent producing this output.
    pub udf_calls: u64,
}

impl OutputDistribution {
    /// `Pr[Y ∈ [a, b]]` from the empirical CDF.
    pub fn interval_prob(&self, a: f64, b: f64) -> f64 {
        self.ecdf.interval_prob(a, b)
    }
}

/// GP evaluator output: the mean-function distribution plus the envelope
/// distributions used by the error bounds (§4.2, Fig. 2).
#[derive(Debug, Clone)]
pub struct GpOutput {
    /// Ŷ′ — empirical CDF of the posterior-mean outputs (returned to users).
    pub y_hat: Ecdf,
    /// Y′_S — outputs of the lower envelope `f̂ − z_α σ`. Its CDF lies
    /// *above* Ŷ′'s.
    pub y_s: Ecdf,
    /// Y′_L — outputs of the upper envelope `f̂ + z_α σ`. Its CDF lies
    /// *below* Ŷ′'s.
    pub y_l: Ecdf,
    /// GP modeling error bound ε_GP achieved (Algorithm 3 / Prop. 4.2).
    pub eps_gp: f64,
    /// MC sampling error bound ε_MC used for the sample count.
    pub eps_mc: f64,
    /// The simultaneous band multiplier z_α in force.
    pub z_alpha: f64,
    /// Training points added while processing this input (online tuning).
    pub points_added: usize,
    /// Whether retraining ran after this input.
    pub retrained: bool,
    /// UDF calls spent on this input (bootstrap + tuning).
    pub udf_calls: u64,
}

impl GpOutput {
    /// Total error bound ε_MC + ε_GP (Theorem 4.1).
    pub fn error_bound(&self) -> f64 {
        self.eps_gp + self.eps_mc
    }

    /// Tuple-existence probability estimate for the predicate
    /// `Y ∈ [a, b]`, with its high-probability bounds
    /// `(ρ_L, ρ̂, ρ_U)` from Eqs. 3–4.
    pub fn tep_bounds(&self, a: f64, b: f64) -> (f64, f64, f64) {
        let rho_hat = self.y_hat.cdf(b) - self.y_hat.cdf(a);
        let rho_u = (self.y_s.cdf(b) - self.y_l.cdf(a)).clamp(0.0, 1.0);
        let rho_l = (self.y_l.cdf(b) - self.y_s.cdf(a)).max(0.0);
        (rho_l, rho_hat.clamp(0.0, 1.0), rho_u)
    }

    /// Collapse into the user-facing [`OutputDistribution`].
    pub fn into_distribution(self) -> OutputDistribution {
        OutputDistribution {
            error_bound: self.error_bound(),
            udf_calls: self.udf_calls,
            ecdf: self.y_hat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf(v: &[f64]) -> Ecdf {
        Ecdf::new(v.to_vec()).unwrap()
    }

    fn toy() -> GpOutput {
        // mean at {1, 2, 3}, envelopes shifted ±0.5.
        GpOutput {
            y_hat: ecdf(&[1.0, 2.0, 3.0]),
            y_s: ecdf(&[0.5, 1.5, 2.5]),
            y_l: ecdf(&[1.5, 2.5, 3.5]),
            eps_gp: 0.05,
            eps_mc: 0.07,
            z_alpha: 3.0,
            points_added: 2,
            retrained: false,
            udf_calls: 7,
        }
    }

    #[test]
    fn envelope_cdf_ordering() {
        let g = toy();
        for y in [0.0, 1.0, 1.7, 2.4, 3.2, 4.0] {
            assert!(g.y_s.cdf(y) >= g.y_hat.cdf(y), "y = {y}");
            assert!(g.y_hat.cdf(y) >= g.y_l.cdf(y), "y = {y}");
        }
    }

    #[test]
    fn tep_bounds_bracket_estimate() {
        let g = toy();
        for (a, b) in [(0.0, 2.0), (1.5, 3.0), (2.9, 10.0)] {
            let (lo, mid, hi) = g.tep_bounds(a, b);
            assert!(lo <= mid + 1e-12, "[{a},{b}]: {lo} > {mid}");
            assert!(mid <= hi + 1e-12, "[{a},{b}]: {mid} > {hi}");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn error_bound_is_sum() {
        let g = toy();
        assert!((g.error_bound() - 0.12).abs() < 1e-15);
        let d = g.into_distribution();
        assert!((d.error_bound - 0.12).abs() < 1e-15);
        assert_eq!(d.udf_calls, 7);
        assert!((d.interval_prob(1.0, 2.0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
