//! Online filtering with selection predicates (§2.2-B, Remark 2.1, §5.5).
//!
//! Queries like Q2 keep a tuple only when `Pr[f(X) ∈ [a, b]] ≥ θ`. Both
//! evaluators can decide *early*:
//!
//! * **MC**: after `m̃ ≤ m` samples the Hoeffding interval
//!   `ρ̃ ± sqrt(ln(2/δ)/(2m̃))` brackets the TEP; when `ρ̃ + ε̃ < θ` the tuple
//!   is dropped without drawing the remaining samples.
//! * **GP**: the envelope upper bound `ρ_U = F_S(b) − F_L(a)` (Eq. 3)
//!   already dominates the TEP with probability `1 − α`; when `ρ_U < θ` the
//!   tuple is dropped without any online tuning.

use crate::config::AccuracyRequirement;
use crate::mc::McEvaluator;
use crate::olgapro::Olgapro;
use crate::output::{GpOutput, OutputDistribution};
use crate::udf::BlackBoxUdf;
use crate::{CoreError, Result};
use udf_gp::band::BandBoxBound;
use udf_gp::local::select_local;
use udf_prob::bounds::hoeffding_halfwidth;
use udf_prob::{Ecdf, InputDistribution};
use udf_spatial::BoundingBox;

/// A selection predicate `f(X) ∈ [lo, hi]` with TEP threshold θ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Interval lower bound `a`.
    pub lo: f64,
    /// Interval upper bound `b`.
    pub hi: f64,
    /// Minimum tuple-existence probability θ to keep the tuple.
    pub theta: f64,
}

impl Predicate {
    /// Validated constructor: the interval must be finite and non-empty
    /// (`lo < hi`; NaN bounds are rejected, not silently accepted by a
    /// vacuous comparison) and θ must lie strictly inside `(0, 1)`.
    pub fn new(lo: f64, hi: f64, theta: f64) -> Result<Self> {
        if !lo.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: "predicate lower bound",
                value: lo,
            });
        }
        if !hi.is_finite() {
            return Err(CoreError::InvalidConfig {
                what: "predicate upper bound",
                value: hi,
            });
        }
        if lo >= hi {
            return Err(CoreError::InvalidConfig {
                what: "predicate interval",
                value: hi - lo,
            });
        }
        if !(theta > 0.0 && theta < 1.0) {
            return Err(CoreError::InvalidConfig {
                what: "theta",
                value: theta,
            });
        }
        Ok(Predicate { lo, hi, theta })
    }
}

/// The outcome of filtered evaluation.
#[derive(Debug, Clone)]
pub enum FilterDecision<T> {
    /// Tuple dropped: the TEP upper bound fell below θ.
    Filtered {
        /// Upper bound on the TEP at the decision point.
        rho_upper: f64,
        /// UDF calls spent before deciding.
        udf_calls: u64,
    },
    /// Tuple kept, with its output distribution and TEP estimate.
    Kept {
        /// The computed output.
        output: T,
        /// Estimated tuple-existence probability.
        tep: f64,
    },
}

impl<T> FilterDecision<T> {
    /// True when the tuple was dropped.
    pub fn is_filtered(&self) -> bool {
        matches!(self, FilterDecision::Filtered { .. })
    }
}

/// MC evaluation with early filtering (Algorithm 1 + Remark 2.1).
///
/// Samples are drawn in batches; after each batch the Hoeffding interval is
/// checked. δ for the interval comes from the accuracy requirement.
pub fn mc_filtered(
    udf: &BlackBoxUdf,
    input: &InputDistribution,
    accuracy: &AccuracyRequirement,
    predicate: &Predicate,
    rng: &mut dyn rand::RngCore,
) -> Result<FilterDecision<OutputDistribution>> {
    if input.dim() != udf.dim() {
        return Err(CoreError::DimensionMismatch {
            expected: udf.dim(),
            found: input.dim(),
        });
    }
    let m = accuracy.mc_samples();
    let batch = 64usize;
    let calls_before = udf.calls();
    let mut outputs = Vec::with_capacity(m);
    let mut hits = 0usize;
    let mut x = vec![0.0; input.dim()];
    while outputs.len() < m {
        let take = batch.min(m - outputs.len());
        for _ in 0..take {
            input.sample_into(rng, &mut x);
            let y = udf.eval(&x);
            if !y.is_finite() {
                return Err(CoreError::NonFiniteUdfOutput {
                    input: x.clone(),
                    value: y,
                });
            }
            if y >= predicate.lo && y <= predicate.hi {
                hits += 1;
            }
            outputs.push(y);
        }
        let m_tilde = outputs.len();
        let rho_tilde = hits as f64 / m_tilde as f64;
        let eps_tilde = hoeffding_halfwidth(m_tilde, accuracy.delta);
        if rho_tilde + eps_tilde < predicate.theta {
            return Ok(FilterDecision::Filtered {
                rho_upper: rho_tilde + eps_tilde,
                udf_calls: udf.calls() - calls_before,
            });
        }
    }
    let tep = hits as f64 / outputs.len() as f64;
    Ok(FilterDecision::Kept {
        output: OutputDistribution {
            ecdf: Ecdf::new(outputs)?,
            error_bound: accuracy.eps,
            udf_calls: udf.calls() - calls_before,
        },
        tep,
    })
}

/// One MC tuple on a (possibly parallel) batch path: fork the UDF's call
/// counter so per-tuple accounting stays exact under concurrency, then run
/// [`mc_filtered`] when a predicate is attached or plain Algorithm 1
/// otherwise (unfiltered tuples are kept with TEP 1). Shared by the stream
/// engine's MC batches and the relational executor's batch mode.
pub fn mc_eval_tuple(
    udf: &BlackBoxUdf,
    input: &InputDistribution,
    accuracy: &AccuracyRequirement,
    predicate: Option<&Predicate>,
    rng: &mut dyn rand::RngCore,
) -> Result<FilterDecision<OutputDistribution>> {
    let local_udf = udf.fork_counter();
    match predicate {
        Some(p) => mc_filtered(&local_udf, input, accuracy, p, rng),
        None => McEvaluator::new(local_udf)
            .compute(input, accuracy, rng)
            .map(|output| FilterDecision::Kept { output, tep: 1.0 }),
    }
}

/// GP evaluation with filtering (§5.5): process the input with OLGAPRO and
/// drop the tuple when the envelope upper bound on the TEP is below θ.
///
/// The filtering check runs on the *first* inference pass inside
/// [`Olgapro::process`] implicitly — tuning only triggers when the error
/// bound is loose, and a loose bound inflates `ρ_U`, never deflating it
/// below θ spuriously. The decision here is therefore sound with
/// probability `1 − α`.
pub fn gp_filtered(
    olgapro: &mut Olgapro,
    input: &InputDistribution,
    predicate: &Predicate,
    rng: &mut dyn rand::RngCore,
) -> Result<FilterDecision<GpOutput>> {
    let calls_before = olgapro.udf().calls();
    let out = olgapro.process(input, rng)?;
    let (_, rho_hat, rho_u) = out.tep_bounds(predicate.lo, predicate.hi);
    if rho_u < predicate.theta {
        Ok(FilterDecision::Filtered {
            rho_upper: rho_u,
            udf_calls: olgapro.udf().calls() - calls_before,
        })
    } else {
        Ok(FilterDecision::Kept {
            output: out,
            tep: rho_hat,
        })
    }
}

/// What the §4.2 box certificate can prove about a predicate over an input
/// region, *without* per-sample inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeDecision {
    /// Every sample's band value provably falls outside `[lo, hi]`, so the
    /// envelope TEP upper bound `ρ_U = F_S(b) − F_L(a)` is exactly 0 — the
    /// fast path's accept hook would rule
    /// [`Verdict::Filter`](crate::sched::Verdict::Filter) with certainty.
    DefiniteReject,
    /// Every sample's band lies strictly inside `[lo, hi]`, so the TEP
    /// lower bound `ρ_L` is exactly 1 ≥ θ: the tuple certainly survives
    /// the filter (it still needs evaluation to produce its output
    /// distribution).
    DefiniteAccept,
    /// The box bracket cannot decide; evaluate normally.
    Undecided,
}

/// Refinement budget for [`envelope_certify`]: each level bisects an
/// undecided box along its longest axis, so the worst case evaluates
/// `2^MAX_REFINE_DEPTH` brackets (with early exit on the first box that
/// stays undecided at the bottom).
const MAX_REFINE_DEPTH: usize = 6;

/// Internal per-box classification for [`envelope_certify`].
#[derive(Clone, Copy, PartialEq)]
enum BoxClass {
    /// The whole band over the box is outside `[lo, hi]` (above *or*
    /// below — both zero out the box's contribution to `ρ_U`).
    Outside,
    /// The whole band over the box is strictly inside `[lo, hi]`.
    Inside,
    /// Undecidable at the refinement budget.
    Mixed,
}

/// The §5.5 envelope certificate over an input box (Remark 2.1's spirit
/// applied to the GP band of §4.2): decide
/// `Pr[f(X) ∈ [lo, hi]] ≥ θ` from band *bounds over the box* instead of
/// per-sample inference.
///
/// `bbox` must be the bounding box of the samples the fast path would
/// draw, and `z_alpha` the simultaneous band multiplier it would use
/// ([`udf_gp::band::simultaneous_z`] on that same box) — then the
/// certificate is **exact** with respect to the fast path:
///
/// * every sample's lower-envelope value is `f̂(x) − z_α σ(x)` for some
///   `x ∈ bbox`; if each refinement sub-box's band bracket is entirely
///   above `hi` or entirely below `lo`, each sample contributes either
///   `0 − 0` (band above) or `1 − 1` (band below) to
///   `ρ_U = F_S(hi) − F_L(lo)`, so `ρ_U = 0 < θ` exactly and the accept
///   hook would have filtered the tuple at fast-path cost
///   ([`DefiniteReject`](EnvelopeDecision::DefiniteReject));
/// * if every sub-box's band is strictly inside, `ρ_L = 1 ≥ θ`
///   ([`DefiniteAccept`](EnvelopeDecision::DefiniteAccept)).
///
/// The bracket is evaluated against the same training subset the fast
/// path's local inference would select (empty selection falls back to the
/// whole model, exactly like inference does). Non-isotropic kernels and
/// cold models return [`Undecided`](EnvelopeDecision::Undecided) — callers
/// must then evaluate normally, which is always sound.
pub fn envelope_certify(
    olga: &Olgapro,
    bbox: &BoundingBox,
    z_alpha: f64,
    pred: &Predicate,
) -> EnvelopeDecision {
    envelope_certify_gap(olga, bbox, z_alpha, pred).0
}

/// [`envelope_certify`] plus a root-cause diagnostic: how far the
/// *root-box* band bracket was from any certificate.
///
/// The gap is the smallest width (in output units) by which the bracket
/// `[band_lo, band_hi]` would have to tighten for one of the three
/// certificates to hold at the root: band entirely above `pred.hi`, band
/// entirely below `pred.lo`, or band strictly inside `[pred.lo, pred.hi]`.
/// A decision certified at the root has gap 0; refinement can still decide
/// a positive-gap box, so the gap measures *difficulty*, not the verdict.
/// [`f64::INFINITY`] means no bracket was computable (cold model,
/// non-isotropic kernel, failed factorization) — consumers exporting JSON
/// get `null` there.
pub fn envelope_certify_gap(
    olga: &Olgapro,
    bbox: &BoundingBox,
    z_alpha: f64,
    pred: &Predicate,
) -> (EnvelopeDecision, f64) {
    let model = olga.model();
    if model.is_empty() {
        return (EnvelopeDecision::Undecided, f64::INFINITY);
    }
    let indices = match select_local(model, bbox, olga.config().gamma) {
        Ok(sel) if !sel.indices.is_empty() => sel.indices,
        Ok(_) => (0..model.len()).collect(),
        Err(_) => return (EnvelopeDecision::Undecided, f64::INFINITY),
    };
    let Ok(bound) = BandBoxBound::new(model, indices) else {
        return (EnvelopeDecision::Undecided, f64::INFINITY);
    };
    let gap = match bound.bracket(bbox, z_alpha) {
        Ok((band_lo, band_hi)) => certificate_gap(band_lo, band_hi, pred),
        Err(_) => f64::INFINITY,
    };
    let decision = match classify_box(&bound, bbox, z_alpha, pred, MAX_REFINE_DEPTH) {
        BoxClass::Outside => EnvelopeDecision::DefiniteReject,
        BoxClass::Inside => EnvelopeDecision::DefiniteAccept,
        BoxClass::Mixed => EnvelopeDecision::Undecided,
    };
    (decision, gap)
}

/// Distance from the root bracket `[band_lo, band_hi]` to the nearest
/// certificate (see [`envelope_certify_gap`]). NaN inputs yield infinity.
fn certificate_gap(band_lo: f64, band_hi: f64, pred: &Predicate) -> f64 {
    // Outside-above needs band_lo > pred.hi: short by (pred.hi − band_lo).
    let above = (pred.hi - band_lo).max(0.0);
    // Outside-below needs band_hi < pred.lo: short by (band_hi − pred.lo).
    let below = (band_hi - pred.lo).max(0.0);
    // Inside needs band_lo > pred.lo and band_hi < pred.hi.
    let inside = (pred.lo - band_lo).max(0.0) + (band_hi - pred.hi).max(0.0);
    let gap = above.min(below).min(inside);
    if gap.is_nan() {
        f64::INFINITY
    } else {
        gap
    }
}

fn classify_box(
    bound: &BandBoxBound<'_>,
    bbox: &BoundingBox,
    z_alpha: f64,
    pred: &Predicate,
    depth: usize,
) -> BoxClass {
    let Ok((band_lo, band_hi)) = bound.bracket(bbox, z_alpha) else {
        return BoxClass::Mixed;
    };
    // Strict comparisons: boundary ties could land a sample's envelope
    // value exactly on an ECDF step.
    if band_lo > pred.hi || band_hi < pred.lo {
        return BoxClass::Outside;
    }
    if band_lo > pred.lo && band_hi < pred.hi {
        return BoxClass::Inside;
    }
    if depth == 0 {
        return BoxClass::Mixed;
    }
    let mut combined: Option<BoxClass> = None;
    for child in bbox.bisect(1) {
        let c = classify_box(bound, &child, z_alpha, pred, depth - 1);
        if c == BoxClass::Mixed {
            return BoxClass::Mixed;
        }
        match combined {
            None => combined = Some(c),
            // Outside + Inside children: some samples are certainly in the
            // interval and some certainly out — neither verdict holds.
            Some(prev) if prev != c => return BoxClass::Mixed,
            Some(_) => {}
        }
    }
    combined.unwrap_or(BoxClass::Mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Metric, OlgaproConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acc() -> AccuracyRequirement {
        AccuracyRequirement::new(0.05, 0.05, 0.0, Metric::Ks).unwrap()
    }

    #[test]
    fn predicate_validation() {
        assert!(Predicate::new(1.0, 0.0, 0.1).is_err());
        assert!(Predicate::new(0.0, 1.0, 0.0).is_err());
        assert!(Predicate::new(0.0, 1.0, 0.1).is_ok());
        // Empty interval.
        assert!(Predicate::new(1.0, 1.0, 0.1).is_err());
        // Non-finite bounds must not slip through a vacuous comparison.
        assert!(Predicate::new(f64::NAN, 1.0, 0.1).is_err());
        assert!(Predicate::new(0.0, f64::NAN, 0.1).is_err());
        assert!(Predicate::new(f64::NEG_INFINITY, 1.0, 0.1).is_err());
        assert!(Predicate::new(0.0, f64::INFINITY, 0.1).is_err());
        // θ at the boundaries and NaN.
        assert!(Predicate::new(0.0, 1.0, 1.0).is_err());
        assert!(Predicate::new(0.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn mc_filters_impossible_event_early() {
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
        // Event 50σ away: essentially probability 0.
        let pred = Predicate::new(50.0, 51.0, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(20);
        let d = mc_filtered(&udf, &input, &acc(), &pred, &mut rng).unwrap();
        match d {
            FilterDecision::Filtered { udf_calls, .. } => {
                assert!(
                    (udf_calls as usize) < acc().mc_samples() / 2,
                    "early stop expected, used {udf_calls} calls"
                );
            }
            FilterDecision::Kept { .. } => panic!("should have filtered"),
        }
    }

    #[test]
    fn mc_keeps_certain_event() {
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
        let pred = Predicate::new(-10.0, 10.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        match mc_filtered(&udf, &input, &acc(), &pred, &mut rng).unwrap() {
            FilterDecision::Kept { tep, output } => {
                assert!(tep > 0.99);
                assert_eq!(output.udf_calls as usize, acc().mc_samples());
            }
            FilterDecision::Filtered { .. } => panic!("should have kept"),
        }
    }

    #[test]
    fn mc_borderline_event_is_kept() {
        // TEP ≈ 0.5 with θ = 0.1 must never be filtered.
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
        let pred = Predicate::new(0.0, 100.0, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        assert!(!mc_filtered(&udf, &input, &acc(), &pred, &mut rng)
            .unwrap()
            .is_filtered());
    }

    /// The certificate must agree *exactly* with the fast path: a
    /// DefiniteReject box has sample-envelope ρ_U = 0, a DefiniteAccept box
    /// has ρ_L = 1, for the very samples `infer_only` would draw.
    #[test]
    fn envelope_certificate_is_exact_wrt_fast_path() {
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        let mut olga = Olgapro::new(udf, cfg);
        let mut rng = StdRng::seed_from_u64(31);
        for i in 0..10 {
            let input = InputDistribution::diagonal_gaussian(&[(0.8 * i as f64, 0.25)]).unwrap();
            olga.process(&input, &mut rng).unwrap();
        }

        // sin(0.8x) ∈ [−1, 1]: [5, 6] is certainly-rejectable, [−2, 2] is
        // certainly-acceptable once the model is warm.
        let reject = Predicate::new(5.0, 6.0, 0.3).unwrap();
        let accept = Predicate::new(-2.0, 2.0, 0.3).unwrap();
        let m = olga.config().samples_per_input();
        let delta_gp = olga.config().split().delta_gp;
        let (mut rejects, mut accepts) = (0, 0);
        for i in 0..10 {
            let input =
                InputDistribution::diagonal_gaussian(&[(0.4 + 0.7 * i as f64, 0.2)]).unwrap();
            let seed = 1000 + i;
            let samples = input.sample_n(&mut StdRng::seed_from_u64(seed), m);
            let bbox = udf_spatial::BoundingBox::from_points(samples.iter().map(|s| s.as_slice()));
            let z = udf_gp::band::simultaneous_z(olga.model().kernel(), &bbox, delta_gp);
            let out = olga
                .infer_only(&input, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            for (pred, which) in [(&reject, "reject"), (&accept, "accept")] {
                let (rho_l, _, rho_u) = out.tep_bounds(pred.lo, pred.hi);
                match envelope_certify(&olga, &bbox, z, pred) {
                    EnvelopeDecision::DefiniteReject => {
                        rejects += 1;
                        assert_eq!(rho_u, 0.0, "{which} input {i}: certified but ρ_U > 0");
                    }
                    EnvelopeDecision::DefiniteAccept => {
                        accepts += 1;
                        assert_eq!(rho_l, 1.0, "{which} input {i}: certified but ρ_L < 1");
                    }
                    EnvelopeDecision::Undecided => {}
                }
            }
        }
        assert!(rejects > 0, "warm model never certified a far predicate");
        assert!(
            accepts > 0,
            "warm model never certified a covering predicate"
        );
    }

    #[test]
    fn envelope_certificate_is_undecided_when_cold() {
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        let olga = Olgapro::new(udf, cfg);
        let bbox = udf_spatial::BoundingBox::new(vec![0.0], vec![1.0]);
        let pred = Predicate::new(5.0, 6.0, 0.3).unwrap();
        assert_eq!(
            envelope_certify(&olga, &bbox, 3.0, &pred),
            EnvelopeDecision::Undecided,
            "empty model must never certify"
        );
        let (decision, gap) = envelope_certify_gap(&olga, &bbox, 3.0, &pred);
        assert_eq!(decision, EnvelopeDecision::Undecided);
        assert!(
            gap.is_infinite(),
            "cold model has no bracket, gap must be ∞ (got {gap})"
        );
    }

    #[test]
    fn certificate_gap_measures_distance_to_each_certificate() {
        let pred = Predicate::new(0.0, 1.0, 0.3).unwrap();
        // Band already entirely above the interval: certified, gap 0.
        assert_eq!(certificate_gap(2.0, 3.0, &pred), 0.0);
        // Band already entirely below: gap 0.
        assert_eq!(certificate_gap(-3.0, -2.0, &pred), 0.0);
        // Band strictly inside: gap 0.
        assert_eq!(certificate_gap(0.25, 0.75, &pred), 0.0);
        // Band [0.9, 1.5]: above needs band_lo > 1 (short 0.1); inside
        // needs band_hi < 1 (short 0.5); below needs band_hi < 0 (short
        // 1.5). Nearest certificate is 0.1 away.
        assert!((certificate_gap(0.9, 1.5, &pred) - 0.1).abs() < 1e-12);
        // Band [-0.5, 0.2]: below is 0.2 away, inside is 0.5 away, above
        // is 1.5 away.
        assert!((certificate_gap(-0.5, 0.2, &pred) - 0.2).abs() < 1e-12);
        // A wide straddling band is far from everything: above needs
        // band_lo > 1 (short 3), below needs band_hi < 0 (short 3),
        // inside needs both ends pulled in (short 2 + 2 = 4).
        let g = certificate_gap(-2.0, 3.0, &pred);
        assert!((g - 3.0).abs() < 1e-12, "straddle gap = {g}");
    }

    #[test]
    fn envelope_gap_is_zero_when_root_bracket_certifies() {
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        let mut olga = Olgapro::new(udf, cfg);
        let mut rng = StdRng::seed_from_u64(31);
        for i in 0..10 {
            let input = InputDistribution::diagonal_gaussian(&[(0.8 * i as f64, 0.25)]).unwrap();
            olga.process(&input, &mut rng).unwrap();
        }
        // sin(0.8x) ∈ [−1, 1]: a far predicate certifies at the root.
        let pred = Predicate::new(50.0, 51.0, 0.3).unwrap();
        let bbox = udf_spatial::BoundingBox::new(vec![1.0], vec![2.0]);
        let z = udf_gp::band::simultaneous_z(olga.model().kernel(), &bbox, 0.05);
        let (decision, gap) = envelope_certify_gap(&olga, &bbox, z, &pred);
        assert_eq!(decision, EnvelopeDecision::DefiniteReject);
        assert_eq!(gap, 0.0, "root-certified decision must have zero gap");
    }

    #[test]
    fn gp_filters_far_predicate() {
        let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
        let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
        let mut olga = Olgapro::new(udf, cfg);
        let mut rng = StdRng::seed_from_u64(23);
        let input = InputDistribution::diagonal_gaussian(&[(5.0, 0.3)]).unwrap();
        // Output lives in [-1, 1]; the predicate asks for [10, 11].
        let pred = Predicate::new(10.0, 11.0, 0.1).unwrap();
        let d = gp_filtered(&mut olga, &input, &pred, &mut rng).unwrap();
        assert!(d.is_filtered(), "far predicate must filter");
        // And a predicate covering the whole range must keep.
        let pred2 = Predicate::new(-2.0, 2.0, 0.5).unwrap();
        let d2 = gp_filtered(&mut olga, &input, &pred2, &mut rng).unwrap();
        match d2 {
            FilterDecision::Kept { tep, .. } => assert!(tep > 0.9),
            FilterDecision::Filtered { .. } => panic!("should keep"),
        }
    }
}
