//! Multivariate-output UDFs — the second §8 future-work item ("a wider
//! range of functions such as high-dimensional input and multivariate
//! output").
//!
//! A vector-valued UDF `F(X) = (f₁(X), …, f_k(X))` is handled by one GP
//! emulator per output component, sharing the *same* Monte Carlo input
//! samples across components (so the marginals are consistent and the
//! sampling cost is paid once). Each component carries its own error bound;
//! the joint guarantee follows from a union bound over components, which
//! [`MultiOlgapro::process`] accounts for by tightening each component's δ
//! to `δ/k`.

use crate::config::OlgaproConfig;
use crate::olgapro::Olgapro;
use crate::output::GpOutput;
use crate::udf::{BlackBoxUdf, UdfFunction};
use crate::{CoreError, Result};
use std::sync::Arc;
use udf_prob::InputDistribution;

/// A deterministic vector-valued function of a fixed-dimension input.
pub trait MultiUdfFunction: Send + Sync {
    /// Input dimensionality.
    fn dim(&self) -> usize;
    /// Output arity `k`.
    fn outputs(&self) -> usize;
    /// Evaluate all components at `x` into a fresh vector.
    fn eval(&self, x: &[f64]) -> Vec<f64>;
    /// Name for reports.
    fn name(&self) -> &str {
        "multi-udf"
    }
}

/// Adapter exposing component `j` of a multivariate UDF as a scalar UDF.
struct Component {
    inner: Arc<dyn MultiUdfFunction>,
    index: usize,
    name: String,
}

impl UdfFunction for Component {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.inner.eval(x)[self.index]
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Joint output: one [`GpOutput`] per component, sharing input samples.
#[derive(Debug, Clone)]
pub struct MultiOutput {
    /// Per-component outputs, in declaration order.
    pub components: Vec<GpOutput>,
}

impl MultiOutput {
    /// The loosest per-component total error bound; with the δ/k splitting
    /// this holds *jointly* across components with probability 1 − δ.
    pub fn max_error_bound(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.error_bound())
            .fold(0.0, f64::max)
    }
}

/// OLGAPRO over a vector-valued UDF: one model per output component.
///
/// Note: each component's `eval` through the component adapter calls the
/// full vector function and projects — the natural model when the UDF is a
/// black box that always computes all outputs. Call accounting therefore
/// counts *vector* evaluations per component model; the shared-counter
/// wrapper deduplicates nothing across components (matching a black box that
/// cannot be partially evaluated).
pub struct MultiOlgapro {
    components: Vec<Olgapro>,
}

impl std::fmt::Debug for MultiOlgapro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiOlgapro({} components)", self.components.len())
    }
}

impl MultiOlgapro {
    /// Build from a vector-valued black box. `config`'s δ is tightened to
    /// δ/k per component (union bound); ε is kept per-component.
    pub fn new(udf: Arc<dyn MultiUdfFunction>, config: OlgaproConfig) -> Result<Self> {
        let k = udf.outputs();
        if k == 0 {
            return Err(CoreError::InvalidConfig {
                what: "multivariate output arity",
                value: 0.0,
            });
        }
        let mut per_component = config.clone();
        per_component.accuracy.delta = config.accuracy.delta / k as f64;
        let components = (0..k)
            .map(|j| {
                let comp = Component {
                    inner: Arc::clone(&udf),
                    index: j,
                    name: format!("{}[{}]", udf.name(), j),
                };
                Olgapro::new(
                    BlackBoxUdf::new(Arc::new(comp), crate::udf::CostModel::Free),
                    per_component.clone(),
                )
            })
            .collect();
        Ok(MultiOlgapro { components })
    }

    /// Output arity.
    pub fn outputs(&self) -> usize {
        self.components.len()
    }

    /// Borrow component `j`'s evaluator.
    pub fn component(&self, j: usize) -> &Olgapro {
        &self.components[j]
    }

    /// Process one uncertain input through every component model.
    pub fn process(
        &mut self,
        input: &InputDistribution,
        rng: &mut dyn rand::RngCore,
    ) -> Result<MultiOutput> {
        let components = self
            .components
            .iter_mut()
            .map(|olga| olga.process(input, rng))
            .collect::<Result<Vec<_>>>()?;
        Ok(MultiOutput { components })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccuracyRequirement, Metric};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// F(x) = (sin bump, linear ramp): two components with different shapes.
    struct TwoOut;
    impl MultiUdfFunction for TwoOut {
        fn dim(&self) -> usize {
            1
        }
        fn outputs(&self) -> usize {
            2
        }
        fn eval(&self, x: &[f64]) -> Vec<f64> {
            vec![(x[0] * 0.8).sin(), 0.2 * x[0]]
        }
        fn name(&self) -> &str {
            "two-out"
        }
    }

    fn config() -> OlgaproConfig {
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
        OlgaproConfig::new(acc, 2.0).unwrap()
    }

    #[test]
    fn processes_both_components() {
        let mut multi = MultiOlgapro::new(Arc::new(TwoOut), config()).unwrap();
        assert_eq!(multi.outputs(), 2);
        let input = InputDistribution::diagonal_gaussian(&[(3.0, 0.3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = None;
        for _ in 0..4 {
            out = Some(multi.process(&input, &mut rng).unwrap());
        }
        let out = out.unwrap();
        assert_eq!(out.components.len(), 2);
        // Component medians near the true values at the input mean.
        let m0 = out.components[0].y_hat.quantile(0.5);
        let m1 = out.components[1].y_hat.quantile(0.5);
        assert!((m0 - (3.0f64 * 0.8).sin()).abs() < 0.1, "sin comp: {m0}");
        assert!((m1 - 0.6).abs() < 0.1, "linear comp: {m1}");
        assert!(out.max_error_bound() < 1.0);
    }

    #[test]
    fn delta_union_bound_applied() {
        let multi = MultiOlgapro::new(Arc::new(TwoOut), config()).unwrap();
        let d = multi.component(0).config().accuracy.delta;
        assert!((d - 0.025).abs() < 1e-12, "δ should be halved: {d}");
    }

    #[test]
    fn component_models_train_independently() {
        let mut multi = MultiOlgapro::new(Arc::new(TwoOut), config()).unwrap();
        let input = InputDistribution::diagonal_gaussian(&[(5.0, 0.4)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4 {
            multi.process(&input, &mut rng).unwrap();
        }
        // The linear component is trivial to model; the sinusoid needs at
        // least as many points.
        let sin_pts = multi.component(0).model().len();
        let lin_pts = multi.component(1).model().len();
        assert!(sin_pts >= lin_pts, "sin {sin_pts} vs linear {lin_pts}");
    }

    #[test]
    fn zero_outputs_rejected() {
        struct ZeroOut;
        impl MultiUdfFunction for ZeroOut {
            fn dim(&self) -> usize {
                1
            }
            fn outputs(&self) -> usize {
                0
            }
            fn eval(&self, _: &[f64]) -> Vec<f64> {
                vec![]
            }
        }
        assert!(MultiOlgapro::new(Arc::new(ZeroOut), config()).is_err());
    }
}
