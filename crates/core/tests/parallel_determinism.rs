//! Strict determinism of [`ParallelOlgapro`]: for a fixed seed, batch
//! outputs are byte-identical for worker counts 1, 2, and 8 — including
//! cold-model bootstraps and slow-path (model-mutating) tuples, not just
//! the converged fast path.

use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::olgapro::Olgapro;
use udf_core::parallel::ParallelOlgapro;
use udf_core::udf::BlackBoxUdf;
use udf_prob::InputDistribution;

fn setup() -> Olgapro {
    let udf = BlackBoxUdf::from_fn("wave", 1, |x| (x[0] * 0.9).sin() + 0.3 * (x[0] * 2.3).cos());
    let acc = AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap();
    let cfg = OlgaproConfig::new(acc, 2.6).unwrap();
    Olgapro::new(udf, cfg)
}

fn inputs(n: usize) -> Vec<InputDistribution> {
    (0..n)
        .map(|i| {
            InputDistribution::diagonal_gaussian(&[((1.0 + 0.9 * i as f64) % 8.0, 0.35)]).unwrap()
        })
        .collect()
}

#[test]
fn batch_outputs_identical_for_workers_1_2_8() {
    let batch = inputs(24);
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for workers in [1usize, 2, 8] {
        let mut par = ParallelOlgapro::new(setup(), workers);
        // Two cold batches then one warm batch, all compared: the first
        // exercises bootstrap + slow path, the last mostly fast path.
        let mut emitted: Vec<Vec<f64>> = Vec::new();
        for seed in [11u64, 12, 13] {
            let (outs, _) = par.process_batch(&batch, seed).unwrap();
            for out in outs {
                emitted.push(out.y_hat.values().to_vec());
            }
        }
        match &reference {
            None => reference = Some(emitted),
            Some(want) => {
                assert_eq!(want.len(), emitted.len());
                for (i, (w, g)) in want.iter().zip(&emitted).enumerate() {
                    assert!(
                        w == g,
                        "output {i} differs between 1 worker and {workers} workers"
                    );
                }
            }
        }
    }
}

#[test]
fn slow_path_mutations_are_order_stable() {
    // Model growth (training-point count) must also match across worker
    // counts, otherwise later batches would diverge.
    let batch = inputs(16);
    let mut sizes = Vec::new();
    for workers in [1usize, 2, 8] {
        let mut par = ParallelOlgapro::new(setup(), workers);
        par.process_batch(&batch, 5).unwrap();
        par.process_batch(&batch, 6).unwrap();
        sizes.push(par.inner().model().len());
    }
    assert_eq!(sizes[0], sizes[1], "1 vs 2 workers model size");
    assert_eq!(sizes[0], sizes[2], "1 vs 8 workers model size");
}
