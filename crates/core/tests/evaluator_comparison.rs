//! Comparative tests across the three evaluators (MC / offline GP /
//! OLGAPRO) and validation of the simulated cost model against real
//! busy-wait time.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::gp_eval::{stratified_design, OfflineGpEvaluator};
use udf_core::mc::McEvaluator;
use udf_core::olgapro::Olgapro;
use udf_core::udf::{BlackBoxUdf, CostModel};
use udf_prob::metrics::lambda_discrepancy;
use udf_prob::InputDistribution;

fn smooth() -> BlackBoxUdf {
    BlackBoxUdf::from_fn("wave", 1, |x| (x[0] * 0.7).sin() * 0.8)
}

fn acc() -> AccuracyRequirement {
    AccuracyRequirement::new(0.15, 0.05, 0.016, Metric::Discrepancy).unwrap()
}

/// All three evaluators agree with each other within their combined budgets.
#[test]
fn three_evaluators_agree() {
    let mut rng = StdRng::seed_from_u64(1);
    let input = InputDistribution::diagonal_gaussian(&[(3.0, 0.5)]).unwrap();
    let cfg = OlgaproConfig::new(acc(), 1.6).unwrap();

    // MC reference.
    let mc = McEvaluator::new(smooth().fork_counter());
    let mc_out = mc.compute(&input, &acc(), &mut rng).unwrap();

    // Offline GP (Algorithm 2) on a grid design.
    let mut offline = OfflineGpEvaluator::new(smooth().fork_counter(), cfg.clone());
    let design = stratified_design(&[0.0], &[10.0], 25, &mut rng);
    offline.train_at(&design).unwrap();
    let off_out = offline.compute(&input, &mut rng).unwrap();

    // OLGAPRO (Algorithm 5), warmed.
    let mut olga = Olgapro::new(smooth().fork_counter(), cfg);
    let mut on_out = None;
    for _ in 0..4 {
        on_out = Some(olga.process(&input, &mut rng).unwrap());
    }
    let on_out = on_out.unwrap();

    let d_off = lambda_discrepancy(&off_out.y_hat, &mc_out.ecdf, 0.016);
    let d_on = lambda_discrepancy(&on_out.y_hat, &mc_out.ecdf, 0.016);
    assert!(d_off <= 0.2, "offline vs MC: {d_off}");
    assert!(d_on <= 0.2, "online vs MC: {d_on}");
}

/// OLGAPRO adapts the training set to where inputs actually live, while the
/// offline evaluator wastes design points; on a localized input stream
/// OLGAPRO reaches the same accuracy with fewer UDF calls.
#[test]
fn online_uses_fewer_calls_on_localized_stream() {
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = OlgaproConfig::new(acc(), 1.6).unwrap();
    // All inputs live in [2, 4] of the [0, 10] domain.
    let inputs: Vec<InputDistribution> = (0..6)
        .map(|i| InputDistribution::diagonal_gaussian(&[(2.0 + 0.4 * i as f64, 0.2)]).unwrap())
        .collect();

    let off_udf = smooth().fork_counter();
    let mut offline = OfflineGpEvaluator::new(off_udf.clone(), cfg.clone());
    // The offline design must cover the whole domain (it cannot know where
    // inputs will fall): 40 points.
    let design = stratified_design(&[0.0], &[10.0], 40, &mut rng);
    offline.train_at(&design).unwrap();
    for input in &inputs {
        offline.compute(input, &mut rng).unwrap();
    }

    let on_udf = smooth().fork_counter();
    let mut olga = Olgapro::new(on_udf.clone(), cfg);
    for input in &inputs {
        olga.process(input, &mut rng).unwrap();
    }

    assert!(
        on_udf.calls() < off_udf.calls(),
        "online {} calls vs offline {} calls",
        on_udf.calls(),
        off_udf.calls()
    );
}

/// The simulated cost model's accounting matches real busy-wait time within
/// a reasonable factor — the core validation behind DESIGN.md §3's
/// substitution of simulated for real evaluation cost.
#[test]
fn simulated_cost_matches_busy_wait_reality() {
    let per_call = Duration::from_micros(300);
    let input = InputDistribution::diagonal_gaussian(&[(3.0, 0.5)]).unwrap();
    let acc = AccuracyRequirement::new(0.2, 0.05, 0.0, Metric::Ks).unwrap();
    let mut rng = StdRng::seed_from_u64(3);

    // Busy: real spinning.
    let busy = smooth().fork_counter().with_cost(CostModel::Busy(per_call));
    let mc_busy = McEvaluator::new(busy.clone());
    let t0 = Instant::now();
    mc_busy.compute(&input, &acc, &mut rng).unwrap();
    let real = t0.elapsed();

    // Simulated: charged.
    let sim = smooth()
        .fork_counter()
        .with_cost(CostModel::Simulated(per_call));
    let mc_sim = McEvaluator::new(sim.clone());
    let t1 = Instant::now();
    mc_sim.compute(&input, &acc, &mut rng).unwrap();
    let charged = t1.elapsed() + sim.charged_cost();

    let ratio = real.as_secs_f64() / charged.as_secs_f64();
    assert!(
        (0.5..2.0).contains(&ratio),
        "busy-wait reality {real:?} vs simulated accounting {charged:?} (ratio {ratio:.2})"
    );
}

/// Offline evaluator trained outside the input's region produces an honest
/// (large) error bound rather than a silently wrong answer.
#[test]
fn offline_extrapolation_reports_large_bound() {
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = OlgaproConfig::new(acc(), 1.6).unwrap();
    let mut offline = OfflineGpEvaluator::new(smooth().fork_counter(), cfg);
    // Design only covers [0, 2]; the input lives near 8.
    let design = stratified_design(&[0.0], &[2.0], 20, &mut rng);
    offline.train_at(&design).unwrap();
    let near = InputDistribution::diagonal_gaussian(&[(1.0, 0.2)]).unwrap();
    let far = InputDistribution::diagonal_gaussian(&[(8.0, 0.2)]).unwrap();
    let b_near = offline.compute(&near, &mut rng).unwrap().eps_gp;
    let b_far = offline.compute(&far, &mut rng).unwrap().eps_gp;
    assert!(
        b_far > b_near * 3.0,
        "extrapolation must inflate the bound: near {b_near}, far {b_far}"
    );
    assert!(b_far > 0.3, "far bound should be clearly unusable: {b_far}");
}
