//! Failure-injection tests: misbehaving UDFs and hostile configurations
//! must surface as typed errors, never as panics, poisoned state, or
//! silently wrong distributions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::mc::McEvaluator;
use udf_core::olgapro::Olgapro;
use udf_core::udf::{BlackBoxUdf, UdfFunction};
use udf_core::CoreError;
use udf_prob::InputDistribution;

/// A UDF that returns NaN after `healthy_calls` evaluations.
struct FlakyUdf {
    healthy_calls: u64,
    calls: AtomicU64,
}

impl UdfFunction for FlakyUdf {
    fn dim(&self) -> usize {
        1
    }
    fn eval(&self, x: &[f64]) -> f64 {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if n >= self.healthy_calls {
            f64::NAN
        } else {
            (x[0] * 0.5).sin()
        }
    }
    fn name(&self) -> &str {
        "flaky"
    }
}

fn acc() -> AccuracyRequirement {
    AccuracyRequirement::new(0.2, 0.05, 0.02, Metric::Discrepancy).unwrap()
}

#[test]
fn mc_reports_nan_with_offending_input() {
    let udf = BlackBoxUdf::new(
        Arc::new(FlakyUdf {
            healthy_calls: 5,
            calls: AtomicU64::new(0),
        }),
        udf_core::udf::CostModel::Free,
    );
    let mc = McEvaluator::new(udf);
    let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    match mc.compute_with_samples(&input, 50, 0.1, &mut rng) {
        Err(CoreError::NonFiniteUdfOutput { input, value }) => {
            assert!(value.is_nan());
            assert_eq!(input.len(), 1);
        }
        other => panic!("expected NonFiniteUdfOutput, got {other:?}"),
    }
}

#[test]
fn olgapro_reports_nan_during_tuning_and_stays_usable() {
    let udf = BlackBoxUdf::new(
        Arc::new(FlakyUdf {
            healthy_calls: 3,
            calls: AtomicU64::new(0),
        }),
        udf_core::udf::CostModel::Free,
    );
    let cfg = OlgaproConfig::new(acc(), 2.0).unwrap();
    let mut olga = Olgapro::new(udf, cfg);
    let input = InputDistribution::diagonal_gaussian(&[(2.0, 0.5)]).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    // Bootstrap needs 5 points; the 4th call NaNs.
    let err = olga.process(&input, &mut rng).unwrap_err();
    assert!(matches!(err, CoreError::NonFiniteUdfOutput { .. }));
    // The model keeps the healthy points it gathered and still predicts.
    assert!(olga.model().len() >= 2);
    assert!(olga.model().predict(&[2.0]).is_ok());
}

#[test]
fn infinite_udf_output_also_rejected() {
    let udf = BlackBoxUdf::from_fn("inf", 1, |x| 1.0 / (x[0] - x[0]).abs());
    let mc = McEvaluator::new(udf);
    let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    assert!(matches!(
        mc.compute_with_samples(&input, 10, 0.1, &mut rng),
        Err(CoreError::NonFiniteUdfOutput { .. })
    ));
}

#[test]
fn constant_udf_degenerate_output_is_handled() {
    // A constant function gives a point-mass output: the GP must converge
    // instantly and the ECDF collapse to one value.
    let udf = BlackBoxUdf::from_fn("const", 1, |_| 5.0);
    let cfg = OlgaproConfig::new(acc(), 1.0).unwrap();
    let mut olga = Olgapro::new(udf, cfg);
    let input = InputDistribution::diagonal_gaussian(&[(0.0, 1.0)]).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let out = olga.process(&input, &mut rng).unwrap();
    assert!((out.y_hat.min() - 5.0).abs() < 0.05);
    assert!((out.y_hat.max() - 5.0).abs() < 0.05);
}

#[test]
fn extreme_scale_udf_does_not_break_numerics() {
    // Outputs of magnitude 1e9: Cholesky, ECDFs and bounds must survive.
    let udf = BlackBoxUdf::from_fn("big", 1, |x| 1e9 * (x[0] * 0.3).sin());
    let acc = AccuracyRequirement::new(0.2, 0.05, 1e7, Metric::Discrepancy).unwrap();
    let cfg = OlgaproConfig::new(acc, 2e9).unwrap();
    let mut olga = Olgapro::new(udf, cfg);
    let input = InputDistribution::diagonal_gaussian(&[(3.0, 0.5)]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..3 {
        let out = olga.process(&input, &mut rng).unwrap();
        assert!(out.y_hat.values().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn tiny_input_variance_near_deterministic() {
    // σ_I = 1e-9: the sample bounding box degenerates to ~a point.
    let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
    let cfg = OlgaproConfig::new(acc(), 2.0).unwrap();
    let mut olga = Olgapro::new(udf, cfg);
    let input = InputDistribution::diagonal_gaussian(&[(2.0, 1e-9)]).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let out = olga.process(&input, &mut rng).unwrap();
    let truth = (2.0f64 * 0.8).sin();
    assert!((out.y_hat.quantile(0.5) - truth).abs() < 0.05);
}

#[test]
fn ks_metric_pipeline_end_to_end() {
    // The KS accuracy path (Prop. 4.2) through OLGAPRO.
    let udf = BlackBoxUdf::from_fn("sin", 1, |x| (x[0] * 0.8).sin());
    let acc = AccuracyRequirement::new(0.15, 0.05, 0.0, Metric::Ks).unwrap();
    let cfg = OlgaproConfig::new(acc, 2.0).unwrap();
    let mut olga = Olgapro::new(udf.fork_counter(), cfg);
    let input = InputDistribution::diagonal_gaussian(&[(4.0, 0.4)]).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = None;
    for _ in 0..5 {
        out = Some(olga.process(&input, &mut rng).unwrap());
    }
    let out = out.unwrap();
    // Validate against a large reference in the KS metric.
    let mc = McEvaluator::new(udf);
    let reference = mc
        .compute_with_samples(&input, 40_000, 0.01, &mut rng)
        .unwrap();
    let d = udf_prob::metrics::ks(&out.y_hat, &reference.ecdf);
    assert!(d <= 0.15 + 0.02, "KS distance {d}");
}

#[test]
fn zero_probability_region_input() {
    // Input concentrated where the UDF is flat zero: output is a point mass
    // at 0 and the bound must still hold.
    let udf = BlackBoxUdf::from_fn("bump", 1, |x| {
        if (3.0..4.0).contains(&x[0]) {
            1.0
        } else {
            0.0
        }
    });
    let cfg = OlgaproConfig::new(acc(), 1.0).unwrap();
    let mut olga = Olgapro::new(udf, cfg);
    let input = InputDistribution::diagonal_gaussian(&[(-50.0, 0.1)]).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let out = olga.process(&input, &mut rng).unwrap();
    assert!(out.y_hat.max().abs() < 0.2);
}
