//! Property-based tests for the evaluation framework's invariants.

use proptest::prelude::*;
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::error_bound::{
    envelope_ecdfs, ks_bound, lambda_discrepancy_bound, lambda_discrepancy_bound_naive,
};
use udf_core::filtering::{mc_filtered, Predicate};
use udf_core::udf::BlackBoxUdf;
use udf_prob::InputDistribution;

fn envelopes() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-10.0f64..10.0, 0.0f64..1.5), 2..60)
        .prop_map(|pts| pts.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn algorithm3_matches_naive((means, sds) in envelopes(), z in 0.5f64..4.0,
                                lambda in 0.0f64..3.0) {
        let (h, s, l) = envelope_ecdfs(&means, &sds, z).unwrap();
        let fast = lambda_discrepancy_bound(&h, &s, &l, lambda);
        let naive = lambda_discrepancy_bound_naive(&h, &s, &l, lambda);
        prop_assert!((fast - naive).abs() < 1e-10, "fast {fast} vs naive {naive}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&fast));
    }

    #[test]
    fn bound_monotone_in_z((means, sds) in envelopes(), lambda in 0.0f64..1.0) {
        let (h1, s1, l1) = envelope_ecdfs(&means, &sds, 1.0).unwrap();
        let (h2, s2, l2) = envelope_ecdfs(&means, &sds, 2.5).unwrap();
        prop_assert!(
            lambda_discrepancy_bound(&h1, &s1, &l1, lambda)
                <= lambda_discrepancy_bound(&h2, &s2, &l2, lambda) + 1e-12
        );
        prop_assert!(ks_bound(&h1, &s1, &l1) <= ks_bound(&h2, &s2, &l2) + 1e-12);
    }

    #[test]
    fn bound_monotone_in_lambda((means, sds) in envelopes(),
                                l1 in 0.0f64..2.0, l2 in 0.0f64..2.0) {
        let (h, s, l) = envelope_ecdfs(&means, &sds, 2.0).unwrap();
        let (lo, hi) = if l1 < l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(
            lambda_discrepancy_bound(&h, &s, &l, hi)
                <= lambda_discrepancy_bound(&h, &s, &l, lo) + 1e-12
        );
    }

    #[test]
    fn ks_bound_at_most_discrepancy_relation((means, sds) in envelopes()) {
        // λ-discrepancy bound at λ=0 relates to KS bound: D ≤ 2·KS.
        let (h, s, l) = envelope_ecdfs(&means, &sds, 2.0).unwrap();
        let d = lambda_discrepancy_bound(&h, &s, &l, 0.0);
        let k = ks_bound(&h, &s, &l);
        prop_assert!(d <= 2.0 * k + 1e-9, "D bound {d} > 2 KS bound {k}");
    }

    #[test]
    fn mc_sample_counts_monotone(e1 in 0.02f64..0.3, e2 in 0.02f64..0.3,
                                 d in 0.01f64..0.2) {
        let (lo, hi) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
        let a_lo = AccuracyRequirement::new(lo, d, 0.0, Metric::Ks).unwrap();
        let a_hi = AccuracyRequirement::new(hi, d, 0.0, Metric::Ks).unwrap();
        prop_assert!(a_lo.mc_samples() >= a_hi.mc_samples());
    }

    #[test]
    fn mc_filter_keeps_certain_events(mu in -3.0f64..3.0, sigma in 0.1f64..1.0,
                                      theta in 0.05f64..0.5) {
        // Predicate spanning ±20σ around the mean: TEP ≈ 1 ≫ θ.
        let udf = BlackBoxUdf::from_fn("id", 1, |x| x[0]);
        let input = InputDistribution::diagonal_gaussian(&[(mu, sigma)]).unwrap();
        let acc = AccuracyRequirement::new(0.2, 0.05, 0.0, Metric::Ks).unwrap();
        let pred = Predicate::new(mu - 20.0 * sigma, mu + 20.0 * sigma, theta).unwrap();
        // A real RNG: the polar-method normal sampler rejects degenerate
        // deterministic sequences.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64((mu.to_bits() >> 3) ^ sigma.to_bits());
        let d = mc_filtered(&udf, &input, &acc, &pred, &mut rng).unwrap();
        prop_assert!(!d.is_filtered());
    }

    #[test]
    fn tep_bounds_are_ordered((means, sds) in envelopes(),
                              a in -12.0f64..12.0, width in 0.0f64..10.0) {
        let (h, s, l) = envelope_ecdfs(&means, &sds, 2.0).unwrap();
        let out = udf_core::output::GpOutput {
            y_hat: h, y_s: s, y_l: l,
            eps_gp: 0.0, eps_mc: 0.0, z_alpha: 2.0,
            points_added: 0, retrained: false, udf_calls: 0,
        };
        let (lo, mid, hi) = out.tep_bounds(a, a + width);
        prop_assert!(lo <= mid + 1e-12 && mid <= hi + 1e-12);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }
}
