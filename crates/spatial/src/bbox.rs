//! Axis-aligned bounding boxes.

/// An axis-aligned box `[lo_i, hi_i]` per dimension.
///
/// The local-inference bound (§5.1) brackets the kernel weight of an excluded
/// training point `x*` over every sample in the box using the *nearest* and
/// *farthest* box points from `x*`; [`BoundingBox::min_dist`] and
/// [`BoundingBox::max_dist`] provide exactly those distances.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoundingBox {
    /// Box around a single point.
    pub fn from_point(p: &[f64]) -> Self {
        BoundingBox {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// Smallest box containing all `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty or dimensions disagree (caller bug).
    pub fn from_points<'a, I>(mut points: I) -> Self
    where
        I: Iterator<Item = &'a [f64]>,
    {
        let first = points.next().expect("from_points: need at least one point");
        let mut b = BoundingBox::from_point(first);
        for p in points {
            b.expand_point(p);
        }
        b
    }

    /// Explicit corners; `lo[i] <= hi[i]` must hold.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensions disagree");
        debug_assert!(lo.iter().zip(&hi).all(|(l, h)| l <= h));
        BoundingBox { lo, hi }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grow to contain `p`.
    #[allow(clippy::needless_range_loop)] // lo/hi/p indexed in lockstep
    pub fn expand_point(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim(), "point dimension disagrees");
        for i in 0..p.len() {
            self.lo[i] = self.lo[i].min(p[i]);
            self.hi[i] = self.hi[i].max(p[i]);
        }
    }

    /// Grow to contain another box.
    pub fn expand_box(&mut self, other: &BoundingBox) {
        for i in 0..self.dim() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Grow every side by `margin` (Γ expansion in local inference).
    pub fn inflate(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            lo: self.lo.iter().map(|l| l - margin).collect(),
            hi: self.hi.iter().map(|h| h + margin).collect(),
        }
    }

    /// True if `p` lies inside (closed) the box.
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(x, (l, h))| x >= l && x <= h)
    }

    /// Euclidean distance from `p` to the nearest box point
    /// (`x_near` in Fig. 3); zero when `p` is inside.
    pub fn min_dist(&self, p: &[f64]) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared version of [`BoundingBox::min_dist`].
    pub fn min_dist_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(x, (l, h))| {
                let d = if x < l {
                    l - x
                } else if x > h {
                    x - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Euclidean distance from `p` to the farthest box point
    /// (`x_far` in Fig. 3).
    pub fn max_dist(&self, p: &[f64]) -> f64 {
        self.max_dist_sq(p).sqrt()
    }

    /// Squared version of [`BoundingBox::max_dist`].
    pub fn max_dist_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(x, (l, h))| {
                let d = (x - l).abs().max((x - h).abs());
                d * d
            })
            .sum()
    }

    /// Minimum distance between two boxes (0 when they intersect).
    pub fn min_dist_box(&self, other: &BoundingBox) -> f64 {
        let mut s = 0.0;
        for i in 0..self.dim() {
            let d = if self.hi[i] < other.lo[i] {
                other.lo[i] - self.hi[i]
            } else if other.hi[i] < self.lo[i] {
                self.lo[i] - other.hi[i]
            } else {
                0.0
            };
            s += d * d;
        }
        s.sqrt()
    }

    /// Hyper-volume (product of side lengths).
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Volume increase if this box were expanded to contain `other`.
    pub fn enlargement(&self, other: &BoundingBox) -> f64 {
        let mut merged = self.clone();
        merged.expand_box(other);
        merged.volume() - self.volume()
    }

    /// Split the box into `2^min(dim, max_splits_dims)` child boxes by
    /// bisecting the longest axes — the paper's refinement that tightens the
    /// local-inference γ bound by evaluating it per sub-box.
    pub fn bisect(&self, max_split_dims: usize) -> Vec<BoundingBox> {
        let d = self.dim();
        // Order axes by length, split the longest ones.
        let mut axes: Vec<usize> = (0..d).collect();
        axes.sort_by(|&a, &b| {
            let la = self.hi[a] - self.lo[a];
            let lb = self.hi[b] - self.lo[b];
            lb.partial_cmp(&la).expect("finite box sides")
        });
        let split_axes = &axes[..max_split_dims.min(d)];
        let mut result = vec![self.clone()];
        for &ax in split_axes {
            let mut next = Vec::with_capacity(result.len() * 2);
            for b in result {
                let mid = 0.5 * (b.lo[ax] + b.hi[ax]);
                let mut left = b.clone();
                left.hi[ax] = mid;
                let mut right = b;
                right.lo[ax] = mid;
                next.push(left);
                next.push(right);
            }
            result = next;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_expansion() {
        let pts = [vec![0.0, 1.0], vec![2.0, -1.0], vec![1.0, 0.5]];
        let b = BoundingBox::from_points(pts.iter().map(|p| p.as_slice()));
        assert_eq!(b.lo(), &[0.0, -1.0]);
        assert_eq!(b.hi(), &[2.0, 1.0]);
        assert!(b.contains(&[1.0, 0.0]));
        assert!(!b.contains(&[3.0, 0.0]));
    }

    #[test]
    fn near_far_distances() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        // Point inside: near = 0, far = distance to farthest corner.
        assert_eq!(b.min_dist(&[1.0, 1.0]), 0.0);
        assert!((b.max_dist(&[1.0, 1.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        // Point outside along x.
        assert!((b.min_dist(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        let far = (4.0f64.powi(2) + 2.0f64.powi(2)).sqrt();
        assert!((b.max_dist(&[4.0, 2.0]) - far).abs() < 1e-12);
    }

    #[test]
    fn box_to_box_distance() {
        let a = BoundingBox::new(vec![0.0], vec![1.0]);
        let b = BoundingBox::new(vec![3.0], vec![4.0]);
        assert!((a.min_dist_box(&b) - 2.0).abs() < 1e-12);
        let c = BoundingBox::new(vec![0.5], vec![0.6]);
        assert_eq!(a.min_dist_box(&c), 0.0);
    }

    #[test]
    fn inflate_and_volume() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        assert!((b.volume() - 2.0).abs() < 1e-12);
        let infl = b.inflate(0.5);
        assert_eq!(infl.lo(), &[-0.5, -0.5]);
        assert!((infl.volume() - 2.0 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn enlargement_is_zero_for_contained() {
        let big = BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        let small = BoundingBox::new(vec![1.0, 1.0], vec![2.0, 2.0]);
        assert_eq!(big.enlargement(&small), 0.0);
        assert!(small.enlargement(&big) > 0.0);
    }

    #[test]
    fn bisect_covers_parent() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![4.0, 2.0]);
        let kids = b.bisect(2);
        assert_eq!(kids.len(), 4);
        let total: f64 = kids.iter().map(|k| k.volume()).sum();
        assert!((total - b.volume()).abs() < 1e-12);
        // First split axis is the longest (x).
        assert!(kids.iter().any(|k| k.hi()[0] <= 2.0 + 1e-12));
    }
}
