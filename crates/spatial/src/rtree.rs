//! A point R-tree with quadratic-split insertion and STR bulk loading.
//!
//! The tree stores `(point, id)` pairs; `id` is the caller's handle into its
//! own training-data arrays (the GP keeps points/values in parallel vectors
//! and uses the R-tree only to *select* indices for local inference).

use crate::BoundingBox;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries assigned to each side of a split.
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
struct Entry {
    point: Vec<f64>,
    id: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        bbox: BoundingBox,
        entries: Vec<Entry>,
    },
    Inner {
        bbox: BoundingBox,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }

    fn recompute_bbox(&mut self) {
        match self {
            Node::Leaf { bbox, entries } => {
                *bbox = BoundingBox::from_points(entries.iter().map(|e| e.point.as_slice()));
            }
            Node::Inner { bbox, children } => {
                let mut b = children[0].bbox().clone();
                for c in &children[1..] {
                    b.expand_box(c.bbox());
                }
                *bbox = b;
            }
        }
    }
}

/// A point R-tree.
///
/// ```
/// use udf_spatial::{BoundingBox, RTree};
/// let mut t = RTree::new(2);
/// for (i, p) in [[0.0, 0.0], [1.0, 1.0], [5.0, 5.0]].iter().enumerate() {
///     t.insert(p.to_vec(), i);
/// }
/// let q = BoundingBox::new(vec![0.0, 0.0], vec![1.5, 1.5]);
/// let mut near = t.query_within(&q, 0.1);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct RTree {
    dim: usize,
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Empty tree for `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        RTree {
            dim,
            root: None,
            len: 0,
        }
    }

    /// Bulk-load with Sort-Tile-Recursive packing — O(n log n) and produces
    /// well-shaped leaves, preferable when the training set pre-exists.
    pub fn bulk_load(dim: usize, items: Vec<(Vec<f64>, usize)>) -> Self {
        let mut tree = RTree::new(dim);
        if items.is_empty() {
            return tree;
        }
        let entries: Vec<Entry> = items
            .into_iter()
            .map(|(point, id)| {
                assert_eq!(point.len(), dim, "point dimension disagrees");
                Entry { point, id }
            })
            .collect();
        tree.len = entries.len();
        let leaves = str_pack(entries, dim);
        tree.root = Some(build_upward(leaves));
        tree
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of stored points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Insert a point with caller-assigned `id`.
    ///
    /// # Panics
    /// Panics if the point dimension disagrees with the tree (caller bug).
    pub fn insert(&mut self, point: Vec<f64>, id: usize) {
        assert_eq!(point.len(), self.dim, "point dimension disagrees");
        self.len += 1;
        let entry = Entry { point, id };
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    bbox: BoundingBox::from_point(&entry.point),
                    entries: vec![entry],
                });
            }
            Some(mut root) => {
                if let Some(sibling) = insert_rec(&mut root, entry) {
                    // Root split: grow the tree by one level.
                    let mut bbox = root.bbox().clone();
                    bbox.expand_box(sibling.bbox());
                    self.root = Some(Node::Inner {
                        bbox,
                        children: vec![root, sibling],
                    });
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// IDs of all points whose Euclidean distance to the query box is at
    /// most `radius` (the §5.1 retrieval: training points near the sample
    /// bounding box).
    pub fn query_within(&self, query: &BoundingBox, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_within_into(query, radius, &mut out);
        out
    }

    /// Allocation-free variant of [`RTree::query_within`]: clears `out` and
    /// fills it with the matching IDs, reusing its capacity. Hot loops (the
    /// GP fast path's radius-expansion search) call this with a scratch
    /// vector so steady state performs no per-query allocation.
    pub fn query_within_into(&self, query: &BoundingBox, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if let Some(root) = &self.root {
            query_rec(root, query, radius, out);
        }
    }

    /// IDs of all points (iteration order unspecified).
    pub fn all_ids(&self) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            collect_ids(root, &mut out);
        }
        out
    }

    /// The tree's leaf cells: each leaf's bounding box with the ids stored
    /// in it. Leaves partition the id set, and every member point lies
    /// inside its leaf's box, so the cells are spatially coherent clusters
    /// of at most `MAX_ENTRIES` points — what group-level pruning (e.g.
    /// udf-join's envelope screen) iterates instead of individual points.
    pub fn leaf_groups(&self) -> Vec<(BoundingBox, Vec<usize>)> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            collect_leaves(root, &mut out);
        }
        out
    }
}

fn collect_leaves(node: &Node, out: &mut Vec<(BoundingBox, Vec<usize>)>) {
    match node {
        Node::Leaf { bbox, entries } => {
            out.push((bbox.clone(), entries.iter().map(|e| e.id).collect()));
        }
        Node::Inner { children, .. } => {
            for c in children {
                collect_leaves(c, out);
            }
        }
    }
}

fn collect_ids(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Leaf { entries, .. } => out.extend(entries.iter().map(|e| e.id)),
        Node::Inner { children, .. } => {
            for c in children {
                collect_ids(c, out);
            }
        }
    }
}

fn query_rec(node: &Node, query: &BoundingBox, radius: f64, out: &mut Vec<usize>) {
    if node.bbox().min_dist_box(query) > radius {
        return;
    }
    match node {
        Node::Leaf { entries, .. } => {
            for e in entries {
                if query.min_dist(&e.point) <= radius {
                    out.push(e.id);
                }
            }
        }
        Node::Inner { children, .. } => {
            for c in children {
                query_rec(c, query, radius, out);
            }
        }
    }
}

/// Recursive insert; returns a new sibling when the visited node split.
fn insert_rec(node: &mut Node, entry: Entry) -> Option<Node> {
    match node {
        Node::Leaf { bbox, entries } => {
            bbox.expand_point(&entry.point);
            entries.push(entry);
            if entries.len() > MAX_ENTRIES {
                Some(split_leaf(node))
            } else {
                None
            }
        }
        Node::Inner { bbox, children } => {
            bbox.expand_point(&entry.point);
            // Choose subtree: least volume enlargement, ties by volume.
            let eb = BoundingBox::from_point(&entry.point);
            let (best, _) = children
                .iter()
                .enumerate()
                .map(|(i, c)| (i, (c.bbox().enlargement(&eb), c.bbox().volume())))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite volumes"))
                .expect("inner nodes are non-empty");
            if let Some(sibling) = insert_rec(&mut children[best], entry) {
                children.push(sibling);
                if children.len() > MAX_ENTRIES {
                    return Some(split_inner(node));
                }
            }
            None
        }
    }
}

/// Quadratic split of an over-full leaf; `node` keeps one group, the
/// returned sibling gets the other.
fn split_leaf(node: &mut Node) -> Node {
    let entries = match node {
        Node::Leaf { entries, .. } => std::mem::take(entries),
        Node::Inner { .. } => unreachable!("split_leaf on inner node"),
    };
    let (a, b) = quadratic_partition(&entries, |e| BoundingBox::from_point(&e.point));
    let (ga, gb): (Vec<Entry>, Vec<Entry>) = partition_by_index(entries, &a, &b);
    *node = Node::Leaf {
        bbox: BoundingBox::from_points(ga.iter().map(|e| e.point.as_slice())),
        entries: ga,
    };
    Node::Leaf {
        bbox: BoundingBox::from_points(gb.iter().map(|e| e.point.as_slice())),
        entries: gb,
    }
}

/// Quadratic split of an over-full inner node.
fn split_inner(node: &mut Node) -> Node {
    let children = match node {
        Node::Inner { children, .. } => std::mem::take(children),
        Node::Leaf { .. } => unreachable!("split_inner on leaf"),
    };
    let (a, b) = quadratic_partition(&children, |c| c.bbox().clone());
    let (ga, gb): (Vec<Node>, Vec<Node>) = partition_by_index(children, &a, &b);
    let mut na = Node::Inner {
        bbox: ga[0].bbox().clone(),
        children: ga,
    };
    na.recompute_bbox();
    let mut nb = Node::Inner {
        bbox: gb[0].bbox().clone(),
        children: gb,
    };
    nb.recompute_bbox();
    *node = na;
    nb
}

/// Guttman's quadratic partition: pick the two seeds wasting the most volume
/// together, then greedily assign the rest; returns index sets.
#[allow(clippy::needless_range_loop)] // index set membership drives the loop
fn quadratic_partition<T>(
    items: &[T],
    to_box: impl Fn(&T) -> BoundingBox,
) -> (Vec<usize>, Vec<usize>) {
    let n = items.len();
    debug_assert!(n >= 2);
    let boxes: Vec<BoundingBox> = items.iter().map(&to_box).collect();
    // Seeds: pair with largest dead space.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in i + 1..n {
            let mut merged = boxes[i].clone();
            merged.expand_box(&boxes[j]);
            let dead = merged.volume() - boxes[i].volume() - boxes[j].volume();
            if dead > worst {
                worst = dead;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut ga = vec![s1];
    let mut gb = vec![s2];
    let mut ba = boxes[s1].clone();
    let mut bb = boxes[s2].clone();
    for i in 0..n {
        if i == s1 || i == s2 {
            continue;
        }
        let remaining = n - ga.len() - gb.len() - 1;
        // Force-assign to honor the minimum fill.
        if ga.len() + remaining < MIN_ENTRIES {
            ga.push(i);
            ba.expand_box(&boxes[i]);
            continue;
        }
        if gb.len() + remaining < MIN_ENTRIES {
            gb.push(i);
            bb.expand_box(&boxes[i]);
            continue;
        }
        let da = ba.enlargement(&boxes[i]);
        let db = bb.enlargement(&boxes[i]);
        if da < db || (da == db && ga.len() <= gb.len()) {
            ga.push(i);
            ba.expand_box(&boxes[i]);
        } else {
            gb.push(i);
            bb.expand_box(&boxes[i]);
        }
    }
    (ga, gb)
}

fn partition_by_index<T>(items: Vec<T>, a: &[usize], _b: &[usize]) -> (Vec<T>, Vec<T>) {
    let aset: std::collections::HashSet<usize> = a.iter().copied().collect();
    let mut ga = Vec::with_capacity(a.len());
    let mut gb = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        if aset.contains(&i) {
            ga.push(item);
        } else {
            gb.push(item);
        }
    }
    (ga, gb)
}

/// STR packing of entries into leaves.
fn str_pack(mut entries: Vec<Entry>, dim: usize) -> Vec<Node> {
    // Recursive tiling over dimensions; final runs become leaves.
    fn tile(mut entries: Vec<Entry>, axis: usize, dim: usize, leaf_cap: usize) -> Vec<Vec<Entry>> {
        if entries.len() <= leaf_cap {
            return vec![entries];
        }
        if axis + 1 == dim {
            // Last axis: cut into leaf-sized runs.
            entries.sort_by(|a, b| {
                a.point[axis]
                    .partial_cmp(&b.point[axis])
                    .expect("finite coordinates")
            });
            return entries.chunks(leaf_cap).map(|c| c.to_vec()).collect();
        }
        entries.sort_by(|a, b| {
            a.point[axis]
                .partial_cmp(&b.point[axis])
                .expect("finite coordinates")
        });
        let n = entries.len();
        let n_leaves = n.div_ceil(leaf_cap);
        let slabs = (n_leaves as f64).powf(1.0 / (dim - axis) as f64).ceil() as usize;
        let slab_size = n.div_ceil(slabs.max(1));
        let mut out = Vec::new();
        for chunk in entries.chunks(slab_size.max(1)) {
            out.extend(tile(chunk.to_vec(), axis + 1, dim, leaf_cap));
        }
        out
    }

    entries.shrink_to_fit();
    tile(entries, 0, dim, MAX_ENTRIES)
        .into_iter()
        .map(|es| Node::Leaf {
            bbox: BoundingBox::from_points(es.iter().map(|e| e.point.as_slice())),
            entries: es,
        })
        .collect()
}

/// Pack nodes level by level until a single root remains.
fn build_upward(mut nodes: Vec<Node>) -> Node {
    while nodes.len() > 1 {
        let mut next = Vec::with_capacity(nodes.len().div_ceil(MAX_ENTRIES));
        // Preserve locality from STR ordering: group consecutive runs.
        let mut iter = nodes.into_iter().peekable();
        while iter.peek().is_some() {
            let children: Vec<Node> = iter.by_ref().take(MAX_ENTRIES).collect();
            let mut bbox = children[0].bbox().clone();
            for c in &children[1..] {
                bbox.expand_box(c.bbox());
            }
            next.push(Node::Inner { bbox, children });
        }
        nodes = next;
    }
    nodes.into_iter().next().expect("at least one node")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Vec<f64>, usize)> {
        (0..n)
            .map(|i| (vec![(i % 10) as f64, (i / 10) as f64], i))
            .collect()
    }

    /// Linear-scan oracle for query_within.
    fn oracle(points: &[(Vec<f64>, usize)], q: &BoundingBox, r: f64) -> Vec<usize> {
        let mut ids: Vec<usize> = points
            .iter()
            .filter(|(p, _)| q.min_dist(p) <= r)
            .map(|(_, id)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn insert_and_query_matches_oracle() {
        let pts = grid_points(100);
        let mut t = RTree::new(2);
        for (p, id) in &pts {
            t.insert(p.clone(), *id);
        }
        assert_eq!(t.len(), 100);
        let q = BoundingBox::new(vec![2.0, 2.0], vec![4.0, 4.0]);
        for r in [0.0, 0.5, 1.5, 3.0] {
            let mut got = t.query_within(&q, r);
            got.sort_unstable();
            assert_eq!(got, oracle(&pts, &q, r), "radius {r}");
        }
    }

    #[test]
    fn bulk_load_matches_oracle() {
        let pts = grid_points(237);
        let t = RTree::bulk_load(2, pts.clone());
        assert_eq!(t.len(), 237);
        let q = BoundingBox::new(vec![5.0, 3.0], vec![6.0, 20.0]);
        for r in [0.0, 1.0, 2.5] {
            let mut got = t.query_within(&q, r);
            got.sort_unstable();
            assert_eq!(got, oracle(&pts, &q, r), "radius {r}");
        }
        let mut all = t.all_ids();
        all.sort_unstable();
        assert_eq!(all, (0..237).collect::<Vec<_>>());
    }

    #[test]
    fn empty_tree_behaves() {
        let t = RTree::new(3);
        assert!(t.is_empty());
        let q = BoundingBox::new(vec![0.0; 3], vec![1.0; 3]);
        assert!(t.query_within(&q, 10.0).is_empty());
        assert!(t.all_ids().is_empty());
    }

    #[test]
    fn duplicate_points_are_kept() {
        let mut t = RTree::new(1);
        for i in 0..20 {
            t.insert(vec![1.0], i);
        }
        let q = BoundingBox::from_point(&[1.0]);
        assert_eq!(t.query_within(&q, 0.0).len(), 20);
    }

    #[test]
    fn leaf_groups_partition_and_contain() {
        for tree in [RTree::bulk_load(2, grid_points(237)), {
            let mut t = RTree::new(2);
            for (p, id) in grid_points(100) {
                t.insert(p, id);
            }
            t
        }] {
            let pts: Vec<(Vec<f64>, usize)> = grid_points(tree.len());
            let groups = tree.leaf_groups();
            let mut seen: Vec<usize> = groups.iter().flat_map(|(_, ids)| ids.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..tree.len()).collect::<Vec<_>>(), "ids partition");
            for (bbox, ids) in &groups {
                assert!(ids.len() <= MAX_ENTRIES, "leaf overfull: {}", ids.len());
                for &id in ids {
                    assert!(bbox.contains(&pts[id].0), "id {id} outside its leaf box");
                }
            }
        }
        assert!(RTree::new(3).leaf_groups().is_empty());
    }

    #[test]
    fn high_dimensional_points() {
        let pts: Vec<(Vec<f64>, usize)> = (0..50)
            .map(|i| ((0..10).map(|d| ((i * 7 + d * 3) % 13) as f64).collect(), i))
            .collect();
        let mut t = RTree::new(10);
        for (p, id) in &pts {
            t.insert(p.clone(), *id);
        }
        let q = BoundingBox::from_point(&pts[0].0);
        let got = t.query_within(&q, 0.0);
        assert!(got.contains(&0));
        // Wide radius returns everything.
        let all = t.query_within(&q, 1e6);
        assert_eq!(all.len(), 50);
    }
}
