//! Spatial indexing substrate for local inference (§5.1).
//!
//! OLGAPRO stores GP training points in an R-tree and, per input tuple,
//! retrieves the points whose distance to the *sample bounding box* is below
//! a threshold derived from Γ. This crate provides:
//!
//! * [`BoundingBox`] — axis-aligned boxes with the `near`/`far` corner
//!   distances used by the local-inference error bound γ (Fig. 3 of the
//!   paper);
//! * [`RTree`] — a point R-tree with quadratic-split insertion, STR bulk
//!   loading, and range queries by distance-to-box.

mod bbox;
mod rtree;

pub use bbox::BoundingBox;
pub use rtree::RTree;
