//! Property tests: R-tree queries must agree with a linear-scan oracle, and
//! bounding-box near/far distances must bracket the distance to any
//! contained point — the exact property the §5.1 γ bound relies on.

use proptest::prelude::*;
use udf_spatial::{BoundingBox, RTree};

fn points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    n.prop_flat_map(move |len| {
        prop::collection::vec(prop::collection::vec(-10.0f64..10.0, dim), len.max(1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn query_matches_linear_scan(
        pts in points(2, 1..120),
        qlo in prop::collection::vec(-10.0f64..10.0, 2),
        side in 0.0f64..8.0,
        radius in 0.0f64..6.0,
    ) {
        let qhi: Vec<f64> = qlo.iter().map(|v| v + side).collect();
        let q = BoundingBox::new(qlo, qhi);

        let mut tree = RTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            tree.insert(p.clone(), i);
        }
        let mut got = tree.query_within(&q, radius);
        got.sort_unstable();

        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.min_dist(p) <= radius)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_incremental(pts in points(3, 1..100)) {
        let items: Vec<(Vec<f64>, usize)> =
            pts.iter().cloned().enumerate().map(|(i, p)| (p, i)).collect();
        let bulk = RTree::bulk_load(3, items.clone());
        let mut inc = RTree::new(3);
        for (p, id) in items {
            inc.insert(p, id);
        }
        let q = BoundingBox::new(vec![-2.0; 3], vec![2.0; 3]);
        for radius in [0.0, 1.0, 5.0] {
            let mut a = bulk.query_within(&q, radius);
            let mut b = inc.query_within(&q, radius);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn near_far_bracket_contained_points(
        pts in points(2, 2..40),
        target in prop::collection::vec(-12.0f64..12.0, 2),
    ) {
        let bbox = BoundingBox::from_points(pts.iter().map(|p| p.as_slice()));
        let near = bbox.min_dist(&target);
        let far = bbox.max_dist(&target);
        for p in &pts {
            let d = p
                .iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            prop_assert!(d >= near - 1e-9, "near {near} > d {d}");
            prop_assert!(d <= far + 1e-9, "far {far} < d {d}");
        }
    }

    #[test]
    fn bisect_children_partition_volume(
        lo in prop::collection::vec(-5.0f64..0.0, 3),
        side in prop::collection::vec(0.1f64..5.0, 3),
        splits in 1usize..3,
    ) {
        let hi: Vec<f64> = lo.iter().zip(&side).map(|(l, s)| l + s).collect();
        let b = BoundingBox::new(lo, hi);
        let kids = b.bisect(splits);
        prop_assert_eq!(kids.len(), 1 << splits);
        let total: f64 = kids.iter().map(|k| k.volume()).sum();
        prop_assert!((total - b.volume()).abs() < 1e-9);
    }
}
