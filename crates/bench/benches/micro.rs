//! Criterion microbenchmarks of the hot kernels: GP inference, incremental
//! point addition, Algorithm 3, and the distance metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udf_core::error_bound::{
    envelope_ecdfs, lambda_discrepancy_bound, lambda_discrepancy_bound_naive,
};
use udf_gp::{GpModel, SquaredExponential};
use udf_prob::metrics::{discrepancy, ks};
use udf_prob::Ecdf;

fn fitted_model(n: usize) -> GpModel {
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.5).sin() + x[1].cos()).collect();
    let mut m = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 2);
    m.fit(xs, ys).unwrap();
    m
}

fn bench_gp(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp");
    for n in [50usize, 200] {
        let model = fitted_model(n);
        g.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| model.predict(&[3.3, 7.1]).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("predict_mean", n), &n, |b, _| {
            b.iter(|| model.predict_mean(&[3.3, 7.1]).unwrap())
        });
    }
    g.bench_function("add_point_n200", |b| {
        b.iter_with_setup(
            || fitted_model(200),
            |mut m| m.add_point(vec![5.0, 5.0], 1.0).unwrap(),
        )
    });
    g.finish();
}

fn bench_error_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("error_bound");
    let mut rng = StdRng::seed_from_u64(2);
    for m in [500usize, 2000] {
        let means: Vec<f64> = (0..m).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let sds: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..0.5)).collect();
        let (h, s, l) = envelope_ecdfs(&means, &sds, 3.0).unwrap();
        g.bench_with_input(BenchmarkId::new("algorithm3_fast", m), &m, |b, _| {
            b.iter(|| lambda_discrepancy_bound(&h, &s, &l, 0.1))
        });
        if m <= 500 {
            g.bench_with_input(BenchmarkId::new("naive_quadratic", m), &m, |b, _| {
                b.iter(|| lambda_discrepancy_bound_naive(&h, &s, &l, 0.1))
            });
        }
    }
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    let mut rng = StdRng::seed_from_u64(3);
    let a = Ecdf::new((0..2000).map(|_| rng.gen_range(-5.0..5.0)).collect()).unwrap();
    let b2 = Ecdf::new((0..2000).map(|_| rng.gen_range(-4.0..6.0)).collect()).unwrap();
    g.bench_function("ks_2000", |b| b.iter(|| ks(&a, &b2)));
    g.bench_function("discrepancy_2000", |b| b.iter(|| discrepancy(&a, &b2)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_gp, bench_error_bound, bench_metrics
}
criterion_main!(benches);
