//! `gp/model_cap` — what the bounded GP model lifecycle buys on the
//! paper's adversarial case: the spiky F2 under a tight accuracy
//! (ε = 0.1) over a relation whose tuples keep visiting fresh regions of
//! the domain.
//!
//! Uncapped, every fresh region reroutes into online tuning, the model
//! grows with the relation, and per-tuple cost climbs as O(m²) inference /
//! O(m³) retraining — the `uncapped` series is *deliberately* the
//! pathological path and grows super-linearly with the length axis. The
//! `capped` series bounds the model at a fixed budget, so throughput stays
//! flat: over-budget tuples are emitted at their achieved error bound and
//! counted (`QueryStats::cap_hits`), never silently dropped.
//!
//! ```sh
//! cargo bench --bench model_cap
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use udf_core::config::{AccuracyRequirement, Metric, ModelBudget};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_core::udf::{BlackBoxUdf, CostModel};
use udf_query::{EvalStrategy, Executor, Relation, Schema, Tuple, UdfCall, Value};
use udf_workloads::synthetic::{sweep_mean, PaperFunction};

const CAP: usize = 16;
const SEED: u64 = 0xF2CA9;

fn sweep_rel(n: usize) -> Relation {
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![Value::Gaussian {
                mu: sweep_mean(i),
                sigma: 0.4,
            }])
        })
        .collect();
    Relation::new(Schema::new(&["x"]), tuples).unwrap()
}

/// One capped-or-uncapped `select_batch` over `n` sweeping tuples; returns
/// (rows kept, model size, cap hits) so the interesting state is computed,
/// not optimized away.
fn run_select(rel: &Relation, cap: usize, sched: &BatchScheduler) -> (usize, usize, u64) {
    let f2 = PaperFunction::F2.instantiate(1);
    let range = f2.output_range();
    let udf = BlackBoxUdf::new(Arc::new(f2), CostModel::Free);
    let call = UdfCall::resolve(udf, rel.schema(), &["x"]).unwrap();
    let acc = AccuracyRequirement::new(0.1, 0.05, 0.0, Metric::Ks).unwrap();
    let pred = Predicate::new(-0.5, 2.5, 0.3).unwrap();
    let mut ex = Executor::new(EvalStrategy::Gp, acc, &call, range)
        .unwrap()
        .with_model_cap(cap, ModelBudget::StopGrowing)
        .unwrap();
    let rows = ex.select_batch(rel, &call, &pred, sched, SEED).unwrap();
    let model = ex.olgapro().unwrap().model().len();
    (rows.len(), model, ex.stats().cap_hits)
}

fn bench_model_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp/model_cap");
    let sched = BatchScheduler::new(1);
    for n in [32usize, 64] {
        let rel = sweep_rel(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("capped16", n), &n, |b, _| {
            b.iter(|| run_select(&rel, CAP, &sched));
        });
        g.bench_with_input(BenchmarkId::new("uncapped", n), &n, |b, _| {
            b.iter(|| run_select(&rel, 0, &sched));
        });
    }
    // The capped path alone at longer lengths: cost per tuple must stay
    // flat once the model is full (the uncapped pair would dominate the
    // bench wall-clock here — that asymmetry is the result).
    for n in [256usize, 512] {
        let rel = sweep_rel(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("capped16", n), &n, |b, _| {
            b.iter(|| run_select(&rel, CAP, &sched));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // The uncapped arm is deliberately the pathological O(n³) path: keep
    // the sample budget small so the bench finishes in minutes.
    config = Criterion::default()
        .sample_size(5)
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_model_cap
);
criterion_main!(benches);
