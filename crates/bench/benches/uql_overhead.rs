//! `uql/overhead` — what the declarative front-end costs on top of
//! driving the engine by hand.
//!
//! Four axes:
//!
//! * `parse` — lexer + parser alone;
//! * `parse_plan` — through the binder (catalog lookup, column
//!   resolution, accuracy/predicate validation, pushdown);
//! * `dispatch_16` — full `run_uql` vs. a hand-built
//!   `Executor::select_batch` on a small 16-tuple relation: the per-query
//!   fixed cost including scheduler/executor construction;
//! * `dispatch_10k` — the same pair over 10 000 tuples: the front-end
//!   cost amortized to noise (reported per-tuple via throughput);
//! * `metrics_on_10k` / `metrics_off_10k` — the same `run_uql` with the
//!   session registry recording vs. switched off: the acceptance bar for
//!   the observability layer is that the disabled mode (one relaxed
//!   atomic load per would-be record) stays within ~1% of enabled, i.e.
//!   metrics are cheap enough to leave on.
//!
//! ```sh
//! cargo bench --bench uql_overhead
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_lang::{parse, run_uql, Context, QueryOutput};
use udf_query::{EvalStrategy, Executor, Relation, Schema, Tuple, UdfCall, Value};

/// The benchmarked statement (MC + KS keeps the per-tuple work small so
/// the front-end share is visible).
fn uql(n_label: &str) -> String {
    format!(
        "SELECT F1(x) WITH ACCURACY 0.3 0.05 METRIC ks FROM {n_label} \
         WHERE PR(F1(x) IN [0.2, 1.4]) >= 0.4 USING mc WORKERS 1 SEED 7"
    )
}

fn relation(n: usize) -> Relation {
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![Value::Gaussian {
                mu: (i as f64 * 0.37) % 10.0,
                sigma: 0.5,
            }])
        })
        .collect();
    Relation::new(Schema::new(&["x"]), tuples).unwrap()
}

fn ctx(n: usize, name: &str) -> Context {
    let mut ctx = Context::standard();
    ctx.register_relation(name, relation(n));
    ctx
}

/// The hand-built equivalent of [`uql`]: same catalog entry, accuracy,
/// predicate, seed.
fn hand_built(rel: &Relation, ctx: &Context) -> usize {
    let entry = ctx.udfs().get("F1").unwrap();
    let call = UdfCall::resolve(entry.udf.clone(), rel.schema(), &["x"]).unwrap();
    let accuracy = AccuracyRequirement::new(0.3, 0.05, entry.default_lambda(), Metric::Ks).unwrap();
    let mut ex = Executor::new(EvalStrategy::Mc, accuracy, &call, entry.output_range).unwrap();
    let pred = Predicate::new(0.2, 1.4, 0.4).unwrap();
    let sched = BatchScheduler::new(1);
    ex.select_batch(rel, &call, &pred, &sched, 7).unwrap().len()
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("uql/overhead");
    let src = uql("rel16");
    g.bench_function("parse", |b| {
        b.iter(|| parse(&src).unwrap());
    });
    let context = ctx(16, "rel16");
    g.bench_function("parse_plan", |b| {
        b.iter(|| context.compile(&src).unwrap());
    });
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("uql/overhead");
    for n in [16usize, 10_000] {
        let name = format!("rel{n}");
        let src = uql(&name);
        let mut context = ctx(n, &name);
        let rel = relation(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("uql_select", n), &n, |b, _| {
            b.iter(|| {
                let QueryOutput::Rows(out) = run_uql(&src, &mut context).unwrap() else {
                    unreachable!()
                };
                out.rows.len()
            });
        });
        g.bench_with_input(BenchmarkId::new("direct_select", n), &n, |b, _| {
            b.iter(|| hand_built(&rel, &context));
        });
    }
    g.finish();
}

fn bench_metrics_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("uql/overhead");
    let n = 10_000usize;
    let src = uql("rel10000");
    for enabled in [true, false] {
        let mut context = ctx(n, "rel10000");
        context.metrics().set_enabled(enabled);
        let label = if enabled {
            "metrics_on_10k"
        } else {
            "metrics_off_10k"
        };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(label, |b| {
            b.iter(|| {
                let QueryOutput::Rows(out) = run_uql(&src, &mut context).unwrap() else {
                    unreachable!()
                };
                out.rows.len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_dispatch, bench_metrics_switch);
criterion_main!(benches);
