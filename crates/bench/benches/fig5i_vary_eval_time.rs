//! Fig. 5(i), Expt 5: GP vs. MC total time as the UDF evaluation time T
//! sweeps from 1 µs to 1 s (ε = 0.1).
//!
//! Paper shape: MC time scales linearly with T (m ≈ thousands of calls per
//! input); GP time is nearly insensitive to T after convergence. Crossover
//! near 0.1 ms for F1 and near 10 ms for F4.

use std::time::Duration;
use udf_bench::{as_udf, header, paper_accuracy, run_mc, run_olgapro, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_workloads::synthetic::{GaussianMixtureFn, PaperFunction};

fn main() {
    header(
        "Fig 5(i)",
        "Expt 5 — GP vs MC time vs UDF evaluation time T (ε = 0.1)",
        "T            GP:Funct1     GP:Funct4     MC (any funct)     [ms/input]",
    );
    let n_inputs = udf_bench::inputs_per_point().min(12);
    let f1 = PaperFunction::F1.instantiate(2);
    let f4 = PaperFunction::F4.instantiate(2);

    let gp_time = |f: &GaussianMixtureFn, t: Duration, seed: u64| -> f64 {
        let range = f.output_range();
        let acc = paper_accuracy(range);
        let cfg = OlgaproConfig::new(acc, range).expect("config");
        let inputs = standard_inputs(2, n_inputs, seed);
        run_olgapro(f, as_udf(f, t), cfg, &inputs, seed)
            .time_per_input
            .as_secs_f64()
            * 1e3
    };
    let mc_time = |f: &GaussianMixtureFn, t: Duration, seed: u64| -> f64 {
        let range = f.output_range();
        let acc = paper_accuracy(range);
        let inputs = standard_inputs(2, n_inputs, seed);
        run_mc(f, as_udf(f, t), acc, &inputs, seed)
            .time_per_input
            .as_secs_f64()
            * 1e3
    };

    for t_us in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
        let t = Duration::from_micros(t_us);
        println!(
            "{:<12} {:>10.2} {:>13.2} {:>14.2}",
            format!("{t:?}"),
            gp_time(&f1, t, 100),
            gp_time(&f4, t, 101),
            mc_time(&f1, t, 102),
        );
    }
    println!("\nExpected shape: MC grows ∝ T; GP nearly flat; crossovers at ~0.1 ms (F1) and ~10 ms (F4).");
}
