//! Fig. 5(l), Expt 7: running time vs. function dimensionality d ∈ [1, 10]
//! for GP (T = 1 s nominal) and MC at several T.
//!
//! Paper shape: GP cost grows with d (more training points needed); MC is
//! flat in d but linear in T; even at d = 10 GP wins once T ≥ 0.1 s.

use std::time::Duration;
use udf_bench::{as_udf, header, paper_accuracy, run_mc, run_olgapro, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_workloads::synthetic::GaussianMixtureFn;

fn main() {
    header(
        "Fig 5(l)",
        "Expt 7 — time vs function dimensionality (5-component functions)",
        "d    GP T=1s (ms)   MC T=1ms   MC T=10ms   MC T=100ms   MC T=1s   [ms/input]",
    );
    let n_inputs = udf_bench::inputs_per_point().min(8);
    for d in [1usize, 2, 3, 5, 7, 10] {
        let f = GaussianMixtureFn::generate(format!("d{d}"), d, 5, 2.0, 500 + d as u64);
        let range = f.output_range();
        let acc = paper_accuracy(range);
        let inputs = standard_inputs(d, n_inputs, 130 + d as u64);

        let cfg = OlgaproConfig::new(acc, range).expect("config");
        let gp = run_olgapro(&f, as_udf(&f, Duration::from_secs(1)), cfg, &inputs, 131);

        let mut row = format!("{d:<4} {:>12.1}", gp.time_per_input.as_secs_f64() * 1e3);
        for t_ms in [1u64, 10, 100, 1000] {
            let mc = run_mc(
                &f,
                as_udf(&f, Duration::from_millis(t_ms)),
                acc,
                &inputs,
                132,
            );
            row.push_str(&format!(" {:>10.0}", mc.time_per_input.as_secs_f64() * 1e3));
        }
        println!("{row}");
    }
    println!("\nExpected shape: GP grows with d; MC flat in d, ∝ T; GP < MC(T=1s) even at d = 10.");
}
