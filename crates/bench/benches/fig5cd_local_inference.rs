//! Fig. 5(c,d), Expt 1: local vs. global inference — accuracy and running
//! time as the threshold Γ sweeps from 0.1% to 20% of the function range,
//! with a fixed training set (Funct4).
//!
//! Paper shape: local inference matches global accuracy for most Γ while
//! running 2–4x faster.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use udf_bench::{ground_truth, header, paper_accuracy, standard_inputs};
use udf_core::error_bound::{envelope_ecdfs, lambda_discrepancy_bound};
use udf_core::udf::UdfFunction;
use udf_gp::local::{select_local, LocalPredictor};
use udf_gp::train::{train, TrainConfig};
use udf_gp::{GpModel, SquaredExponential};
use udf_prob::metrics::lambda_discrepancy;
use udf_spatial::BoundingBox;

fn main() {
    header(
        "Fig 5(c,d)",
        "Expt 1 — local inference accuracy & time vs Γ (Funct4, fixed n=300)",
        "Γ (% range)   mode     mean error   error bound   time (ms)   avg |subset|",
    );
    let f = udf_workloads::synthetic::PaperFunction::F4.instantiate(2);
    let range = f.output_range();
    let acc = paper_accuracy(range);
    let n_inputs = udf_bench::inputs_per_point().min(15);
    let inputs = standard_inputs(2, n_inputs, 31);
    let m = 600usize; // fixed sample count per input for a fair comparison

    // Fixed training set of 300 points.
    let mut rng = StdRng::seed_from_u64(32);
    let xs: Vec<Vec<f64>> = (0..300)
        .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| f.eval(x)).collect();
    let mut model = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 2);
    model.fit(xs, ys).expect("fit");
    train(&mut model, &TrainConfig::default()).expect("train");

    let z = 3.0; // fixed band multiplier — identical across modes

    // Global baseline.
    let mut truth_rng = StdRng::seed_from_u64(33);
    let mut sample_rng = StdRng::seed_from_u64(34);
    let (g_err, g_bound, g_time) = run(
        &f,
        &model,
        &inputs,
        m,
        z,
        acc.lambda,
        None,
        &mut sample_rng,
        &mut truth_rng,
    );
    println!(
        "   --        global   {g_err:>9.4}   {g_bound:>10.4}   {:>8.2}    {:>6}",
        g_time * 1e3,
        model.len()
    );

    for gamma_pct in [0.1f64, 0.5, 1.0, 5.0, 10.0, 20.0] {
        let gamma = gamma_pct / 100.0 * range;
        let mut truth_rng = StdRng::seed_from_u64(33);
        let mut sample_rng = StdRng::seed_from_u64(34);
        let (err, bound, time) = run(
            &f,
            &model,
            &inputs,
            m,
            z,
            acc.lambda,
            Some(gamma),
            &mut sample_rng,
            &mut truth_rng,
        );
        // Report mean subset size.
        let mut rng2 = StdRng::seed_from_u64(34);
        let mut subset = 0usize;
        for input in &inputs {
            let samples = input.sample_n(&mut rng2, m);
            let bbox = BoundingBox::from_points(samples.iter().map(|s| s.as_slice()));
            subset += select_local(&model, &bbox, gamma)
                .expect("select")
                .indices
                .len();
        }
        println!(
            "{:>7.1}%      local    {err:>9.4}   {bound:>10.4}   {:>8.2}    {:>6}",
            gamma_pct,
            time * 1e3,
            subset / inputs.len()
        );
    }
    println!("\nExpected shape: local ≈ global accuracy for Γ ≤ ~5% of range, at 2-4x lower time.");
}

#[allow(clippy::too_many_arguments)]
fn run(
    f: &udf_workloads::synthetic::GaussianMixtureFn,
    model: &GpModel,
    inputs: &[udf_prob::InputDistribution],
    m: usize,
    z: f64,
    lambda: f64,
    gamma: Option<f64>,
    sample_rng: &mut StdRng,
    truth_rng: &mut StdRng,
) -> (f64, f64, f64) {
    let (mut err_sum, mut bound_sum) = (0.0, 0.0);
    let mut elapsed = 0.0;
    for input in inputs {
        let samples = input.sample_n(sample_rng, m);
        let t0 = Instant::now();
        let (means, sds): (Vec<f64>, Vec<f64>) = match gamma {
            None => samples
                .iter()
                .map(|s| {
                    let p = model.predict(s).expect("predict");
                    (p.mean, p.var.sqrt())
                })
                .unzip(),
            Some(g) => {
                let bbox = BoundingBox::from_points(samples.iter().map(|s| s.as_slice()));
                let sel = select_local(model, &bbox, g).expect("select");
                let lp = LocalPredictor::new(model, sel.indices).expect("local predictor");
                samples
                    .iter()
                    .map(|s| {
                        let p = lp.predict(s).expect("predict");
                        (p.mean, p.var.sqrt())
                    })
                    .unzip()
            }
        };
        elapsed += t0.elapsed().as_secs_f64();
        let (y_hat, y_s, y_l) = envelope_ecdfs(&means, &sds, z).expect("ecdfs");
        bound_sum += lambda_discrepancy_bound(&y_hat, &y_s, &y_l, lambda);
        let truth = ground_truth(f, input, 20_000, truth_rng);
        err_sum += lambda_discrepancy(&y_hat, &truth, lambda);
    }
    let n = inputs.len() as f64;
    (err_sum / n, bound_sum / n, elapsed / n)
}
