//! Fig. 4: the family of synthetic functions F1–F4 (different smoothness and
//! shape). Prints a coarse 2-D surface sample for each so the shapes can be
//! inspected / plotted.

use udf_bench::header;
use udf_core::udf::UdfFunction;
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Fig 4",
        "synthetic function family F1-F4 (2-D surfaces)",
        "function  components  scale  | surface min / mean / max on 21x21 grid",
    );
    for pf in PaperFunction::ALL {
        let f = pf.instantiate(2);
        let n = 21;
        let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for i in 0..n {
            for j in 0..n {
                let x = [
                    i as f64 * 10.0 / (n - 1) as f64,
                    j as f64 * 10.0 / (n - 1) as f64,
                ];
                let v = f.eval(&x);
                lo = lo.min(v);
                hi = hi.max(v);
                sum += v;
            }
        }
        println!(
            "{:<8}  {:>10}  {:>5}  | {:.4} / {:.4} / {:.4}",
            pf.label(),
            match pf {
                PaperFunction::F1 | PaperFunction::F2 => 1,
                _ => 5,
            },
            match pf {
                PaperFunction::F1 => "3.0",
                PaperFunction::F2 => "0.6",
                PaperFunction::F3 => "2.0",
                PaperFunction::F4 => "0.5",
            },
            lo,
            sum / (n * n) as f64,
            hi
        );
        // One row of the surface through the domain center, for plotting.
        let mut row = String::new();
        for i in 0..n {
            let v = f.eval(&[i as f64 * 10.0 / (n - 1) as f64, 5.0]);
            row.push_str(&format!("{v:.3} "));
        }
        println!("  f(x, 5) = {row}");
    }
}
