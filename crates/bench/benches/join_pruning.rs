//! `join/pruning` — what envelope-based pair pruning buys on the paper's
//! §1 Q2 shape: an `AngDist` self-join over n galaxies with a narrow
//! `Pr[· ∈ [a, b]] ≥ θ` band.
//!
//! The `naive` series materializes the filtered cross product and
//! evaluates every pair (warmup + main rounds, the hand-built Q2
//! construction); the `pruned` series runs the same join with the §4.2
//! envelope certificate, skipping per-sample inference for pairs the
//! band bounds prove rejectable. Outputs are byte-identical by
//! construction (pinned by `crates/join/tests/parity.rs` and the UQL
//! `join_e2e` suite); the axis shows wall-clock plus, via the printed
//! one-shot stats, *measurably fewer per-pair evaluations* —
//! `pairs_pruned > 0` and `pairs_evaluated < pairs_generated` at n ≥ 128.
//!
//! Both series run under a model cap of 160 with a per-pair tuning
//! budget of 3: the default 10-point budget at this λ-tight accuracy
//! exhausts itself on every fresh-region pair (the warmup alone would
//! grow the model past 300 points and per-pair inference cost with it —
//! the `gp/model_cap` axis prices that pathology), while the small
//! budget spreads the capped model evenly across the join's input
//! space. Degraded acceptances are visible as `cap_hits`, identically
//! in both series.
//!
//! ```sh
//! cargo bench --bench join_pruning
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_join::{JoinExecutor, JoinSpec, JoinStats, Side};
use udf_query::{EvalStrategy, Relation, Schema, Tuple, Value};
use udf_workloads::UdfCatalog;

const SEED: u64 = 0x901D;
const MODEL_CAP: usize = 160;
const TUNING_BUDGET: usize = 3;

fn galaxies(n: usize) -> Relation {
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / n as f64,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap()
}

fn run_join(g: &Relation, prune: bool, sched: &BatchScheduler) -> JoinStats {
    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let spec = JoinSpec::new(
        g,
        "a",
        g,
        "b",
        entry.udf.clone(),
        &[(Side::Left, "z"), (Side::Right, "z")],
        accuracy,
        entry.output_range,
    )
    .unwrap()
    .on_less_than("objID", "objID")
    .unwrap()
    .predicate(Predicate::new(0.3, 0.36, 0.5).unwrap())
    .strategy(EvalStrategy::Gp)
    .prune(prune)
    .model_cap(MODEL_CAP)
    .tuning_budget(TUNING_BUDGET)
    .seed(SEED);
    let out = JoinExecutor::new(&spec).unwrap().run(sched).unwrap();
    out.stats
}

fn bench_join_pruning(c: &mut Criterion) {
    let sched = BatchScheduler::new(2);
    // One-shot evaluation-count report (the acceptance metric; criterion
    // times the same runs below).
    for n in [64usize, 128, 256] {
        let g = galaxies(n);
        let naive = run_join(&g, false, &sched);
        let pruned = run_join(&g, true, &sched);
        assert_eq!(naive.pairs_kept, pruned.pairs_kept, "outputs must agree");
        eprintln!(
            "join/pruning n={n}: naive evaluated {} of {} pairs; pruned evaluated {} \
             (pairs_pruned={}, prune_attempts={})",
            naive.pairs_evaluated(),
            naive.pairs_generated,
            pruned.pairs_evaluated(),
            pruned.pairs_pruned,
            pruned.prune_attempts,
        );
    }

    let mut grp = c.benchmark_group("join/pruning");
    for n in [64usize, 128, 256] {
        let g = galaxies(n);
        let pairs = (n * (n - 1) / 2) as u64;
        grp.throughput(Throughput::Elements(pairs));
        grp.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| run_join(&g, false, &sched));
        });
        grp.bench_with_input(BenchmarkId::new("pruned", n), &n, |b, _| {
            b.iter(|| run_join(&g, true, &sched));
        });
    }
    grp.finish();
}

criterion_group!(
    name = benches;
    // Each iteration is a full O(n²)-pair join: keep the sample budget
    // small so the axis finishes in minutes.
    config = Criterion::default()
        .sample_size(5)
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_join_pruning
);
criterion_main!(benches);
