//! Fig. 5(a), Profile 1: relative inference error vs. number of training
//! points for F1–F4 (2-D, global inference).
//!
//! Paper shape: F1 is accurate from ~30 points; F4 needs > 300; relative
//! error spans orders of magnitude between them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udf_bench::header;
use udf_core::udf::UdfFunction;
use udf_gp::train::{train, TrainConfig};
use udf_gp::{GpModel, SquaredExponential};
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Fig 5(a)",
        "Profile 1 — accuracy of function fitting",
        "n        Funct1        Funct2        Funct3        Funct4   (mean relative error)",
    );
    let ns = [25usize, 50, 100, 200, 300, 400];
    let mut table = vec![vec![0.0f64; PaperFunction::ALL.len()]; ns.len()];

    for (fi, pf) in PaperFunction::ALL.into_iter().enumerate() {
        let f = pf.instantiate(2);
        let mut rng = StdRng::seed_from_u64(100 + fi as u64);
        // Fixed test grid of 400 random points.
        let test: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        for (ni, &n) in ns.iter().enumerate() {
            let xs: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
                .collect();
            let ys: Vec<f64> = xs.iter().map(|x| f.eval(x)).collect();
            let mut model = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 2);
            model.fit(xs, ys).expect("fit");
            train(&mut model, &TrainConfig::default()).expect("train");
            // Mean error normalized by the output range. (A pointwise
            // |f̂−f|/|f| denominator is unstable for the spiky functions,
            // which are ≈ 0 over most of the domain.)
            let range = f.output_range();
            let mut sum = 0.0;
            for t in &test {
                let truth = f.eval(t);
                let pred = model.predict_mean(t).expect("predict");
                sum += (pred - truth).abs() / range;
            }
            table[ni][fi] = sum / test.len() as f64;
        }
    }
    for (ni, &n) in ns.iter().enumerate() {
        println!(
            "{:<6} {:>12.6} {:>13.6} {:>13.6} {:>13.6}",
            n, table[ni][0], table[ni][1], table[ni][2], table[ni][3]
        );
    }
    println!("\nExpected shape: error decreases with n; Funct1 converges fastest, Funct4 slowest.");
}
