//! `trajectory` — the persisted benchmark trajectory: one self-timed run
//! over trimmed configurations of the key ROADMAP axes, written as
//! `BENCH_10.json` at the repository root so successive PRs leave a
//! machine-readable performance trail next to the code they changed.
//!
//! Unlike the criterion benches (statistical, minutes-long), this harness
//! is a single deterministic pass per configuration — wall-clock numbers
//! are indicative, the *counters* (rows, pairs pruned, cap hits, model
//! points) are exact and reproducible.
//!
//! ```sh
//! cargo bench --bench trajectory              # full trajectory
//! TRAJECTORY_SMOKE=1 cargo bench --bench trajectory   # CI smoke sizes
//! TRAJECTORY_OUT=/tmp/t.json cargo bench --bench trajectory
//! ```
//!
//! Output schema (one JSON object, validated before writing):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "pr": 6,
//!   "bench": "trajectory",
//!   "smoke": false,
//!   "axes": {
//!     "stream_throughput": [
//!       {"workers": 1, "tuples": 4096, "elapsed_ns": 0, "tuples_per_sec": 0.0}
//!     ],
//!     "gp_model_cap": [
//!       {"series": "capped16", "n": 64, "elapsed_ns": 0, "rows": 0,
//!        "model_points": 16, "cap_hits": 0}
//!     ],
//!     "gp_fastpath": [
//!       {"m": 64, "tuples": 32, "samples": 2048, "scalar_ns": 0,
//!        "blocked_ns": 0, "scalar_samples_per_sec": 0.0,
//!        "blocked_samples_per_sec": 0.0, "speedup": 0.0,
//!        "cache_hits": 0, "cache_misses": 0}
//!     ],
//!     "join_pruning": [
//!       {"series": "pruned", "n": 128, "elapsed_ns": 0, "pairs_generated": 0,
//!        "pairs_pruned": 0, "pairs_evaluated": 0, "pairs_kept": 0, "cap_hits": 0}
//!     ],
//!     "uql_overhead": {
//!       "n": 512, "reps": 9, "rows": 0,
//!       "metrics_off_ns": 0, "metrics_on_ns": 0, "overhead_pct": 0.0,
//!       "registry": {"counters": {}, "gauges": {}, "histograms": {}}
//!     },
//!     "monitor_overhead": {
//!       "n": 512, "reps": 9, "rows": 0,
//!       "monitor_off_ns": 0, "monitor_on_ns": 0, "overhead_pct": 0.0,
//!       "samples": 0, "series": 0, "alerts": 0
//!     },
//!     "uql_prepared": {
//!       "relation": {"n": 512, "reps": 9, "one_shot_ns": 0, "execute_ns": 0,
//!                    "compile_ns": 0, "cached_lookup_ns": 0,
//!                    "fixed_cost_saved_ns": 0, "speedup": 0.0},
//!       "join": {"n": 24, "one_shot_ns": 0, "first_execute_ns": 0,
//!                "warm_execute_ns": 0, "warm_speedup": 0.0,
//!                "registry": {"counters": {}, "gauges": {}, "histograms": {}}}
//!     }
//!   }
//! }
//! ```
//!
//! `elapsed_ns` / `*_ns` are wall-clock nanoseconds for one pass (medians
//! over `reps` for the uql axis); `registry` is the instrumented run's
//! [`udf_obs::Snapshot::to_json`] dump, so the trajectory also records
//! *what the engine did* (verdicts, phase times, model growth), not just
//! how long it took.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;
use udf_core::config::{AccuracyRequirement, Metric, ModelBudget};
use udf_core::filtering::Predicate;
use udf_core::sched::BatchScheduler;
use udf_core::udf::{BlackBoxUdf, CostModel};
use udf_gp::local::{select_local, select_local_with, LocalPredictor};
use udf_gp::{GpModel, LocalPredictorCache, PredictScratch, SelectScratch, SquaredExponential};
use udf_join::{JoinExecutor, JoinSpec, JoinStats, Side};
use udf_lang::{run_uql, Context, QueryOutput};
use udf_obs::json::{validate, JsonArr, JsonObj};
use udf_prob::InputDistribution;
use udf_query::{EvalStrategy, Executor, Relation, Schema, Tuple, UdfCall, Value};
use udf_spatial::BoundingBox;
use udf_stream::prelude::*;
use udf_workloads::synthetic::{sweep_mean, PaperFunction};
use udf_workloads::UdfCatalog;

fn acc_ks(eps: f64) -> AccuracyRequirement {
    AccuracyRequirement::new(eps, 0.05, 0.0, Metric::Ks).unwrap()
}

/// Median of one timed closure over `reps` passes, in nanoseconds.
fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let ns = t0.elapsed().as_nanos() as u64;
            drop(out);
            ns
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

// ---------------------------------------------------------------- stream

/// One MC subscription over `tuples` synthetic tuples (the
/// `stream/workers_cpu` shape, trimmed to a single pass).
fn stream_axis(smoke: bool) -> String {
    let tuples: u64 = if smoke { 512 } else { 4096 };
    let workers: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let udf = BlackBoxUdf::from_fn("free", 1, |x| (x[0] * 0.8).sin());
    let mut arr = JsonArr::new();
    for &w in workers {
        let t0 = Instant::now();
        let mut session = Session::new(EngineConfig::new().workers(w).batch_size(128).seed(7));
        session
            .subscribe(QuerySpec::new(
                "q0",
                udf.clone(),
                acc_ks(0.3),
                StreamStrategy::Mc,
            ))
            .unwrap();
        let stats = session
            .run(
                SyntheticSource::gaussian(1, 0.5, 11).with_limit(tuples),
                None,
            )
            .unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(stats.tuples, tuples);
        let mut o = JsonObj::new();
        o.u64("workers", w as u64)
            .u64("tuples", tuples)
            .u64("elapsed_ns", elapsed.as_nanos() as u64)
            .f64("tuples_per_sec", tuples as f64 / elapsed.as_secs_f64());
        arr.raw(&o.finish());
    }
    arr.finish()
}

// -------------------------------------------------------------- model cap

/// One capped-or-uncapped GP `select_batch` over `n` sweeping tuples
/// (the `gp/model_cap` shape).
fn model_cap_select(n: usize, cap: usize, sched: &BatchScheduler) -> (usize, usize, u64) {
    let rel_tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![Value::Gaussian {
                mu: sweep_mean(i),
                sigma: 0.4,
            }])
        })
        .collect();
    let rel = Relation::new(Schema::new(&["x"]), rel_tuples).unwrap();
    let f2 = PaperFunction::F2.instantiate(1);
    let range = f2.output_range();
    let udf = BlackBoxUdf::new(Arc::new(f2), CostModel::Free);
    let call = UdfCall::resolve(udf, rel.schema(), &["x"]).unwrap();
    let acc = AccuracyRequirement::new(0.1, 0.05, 0.0, Metric::Ks).unwrap();
    let pred = Predicate::new(-0.5, 2.5, 0.3).unwrap();
    let mut ex = Executor::new(EvalStrategy::Gp, acc, &call, range)
        .unwrap()
        .with_model_cap(cap, ModelBudget::StopGrowing)
        .unwrap();
    let rows = ex.select_batch(&rel, &call, &pred, sched, 0xF2CA9).unwrap();
    let model = ex.olgapro().unwrap().model().len();
    (rows.len(), model, ex.stats().cap_hits)
}

fn model_cap_axis(smoke: bool) -> String {
    let sched = BatchScheduler::new(1);
    let pair_n = if smoke { 32 } else { 64 };
    let mut runs: Vec<(&str, usize, usize)> =
        vec![("capped16", pair_n, 16), ("uncapped", pair_n, 0)];
    if !smoke {
        // The capped series alone at length: per-tuple cost must stay flat
        // once the model is full (pairing it with uncapped would dominate
        // the trajectory wall-clock — that asymmetry is the result).
        runs.push(("capped16", 256, 16));
    }
    let mut arr = JsonArr::new();
    for (series, n, cap) in runs {
        let t0 = Instant::now();
        let (rows, model, cap_hits) = model_cap_select(n, cap, &sched);
        let mut o = JsonObj::new();
        o.str("series", series)
            .u64("n", n as u64)
            .u64("elapsed_ns", t0.elapsed().as_nanos() as u64)
            .u64("rows", rows as u64)
            .u64("model_points", model as u64)
            .u64("cap_hits", cap_hits);
        arr.raw(&o.finish());
    }
    arr.finish()
}

// ----------------------------------------------------------- join pruning

/// One `AngDist` self-join over `n` galaxies (the `join/pruning` shape).
fn pruning_join(n: usize, prune: bool, sched: &BatchScheduler) -> JoinStats {
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / n as f64,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    let g = Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap();
    let cat = UdfCatalog::standard();
    let entry = cat.get("AngDist").unwrap();
    let accuracy =
        AccuracyRequirement::new(0.2, 0.05, entry.default_lambda(), Metric::Discrepancy).unwrap();
    let spec = JoinSpec::new(
        &g,
        "a",
        &g,
        "b",
        entry.udf.clone(),
        &[(Side::Left, "z"), (Side::Right, "z")],
        accuracy,
        entry.output_range,
    )
    .unwrap()
    .on_less_than("objID", "objID")
    .unwrap()
    .predicate(Predicate::new(0.3, 0.36, 0.5).unwrap())
    .strategy(EvalStrategy::Gp)
    .prune(prune)
    .model_cap(160)
    .tuning_budget(3)
    .seed(0x901D);
    let out = JoinExecutor::new(&spec).unwrap().run(sched).unwrap();
    out.stats
}

fn join_axis(smoke: bool) -> String {
    let sched = BatchScheduler::new(2);
    let n = if smoke { 48 } else { 128 };
    let mut arr = JsonArr::new();
    let mut kept = Vec::new();
    for prune in [false, true] {
        let t0 = Instant::now();
        let stats = pruning_join(n, prune, &sched);
        kept.push(stats.pairs_kept);
        let mut o = JsonObj::new();
        o.str("series", if prune { "pruned" } else { "naive" })
            .u64("n", n as u64)
            .u64("elapsed_ns", t0.elapsed().as_nanos() as u64)
            .u64("pairs_generated", stats.pairs_generated)
            .u64("pairs_pruned", stats.pairs_pruned)
            .u64("pairs_evaluated", stats.pairs_evaluated())
            .u64("pairs_kept", stats.pairs_kept)
            .u64("cap_hits", stats.cap_hits);
        arr.raw(&o.finish());
    }
    assert_eq!(kept[0], kept[1], "pruned join must match naive output");
    arr.finish()
}

// ------------------------------------------------------------ gp fastpath

/// The pre-blocking local selection, reconstructed verbatim as the scalar
/// baseline: every radius-expansion iteration re-walks the kernel per
/// excluded point per sub-box (per-entry `eval_dist`, fresh mask and
/// sub-box allocations). Returns the sorted selected indices — asserted
/// equal to the current fast path's before timing, so the measured gap is
/// pure mechanics, not a different selection.
fn reference_select(model: &GpModel, sample_box: &BoundingBox, gamma_threshold: f64) -> Vec<usize> {
    let kernel = model.kernel();
    let alpha = model.alpha();
    let xs = model.inputs();
    let n = model.len();
    let step = model.half_value_distance().expect("isotropic");
    let mut radius = step;
    loop {
        let mut selected = model.spatial_index().query_within(sample_box, radius);
        selected.sort_unstable();
        let mut gamma = 0.0f64;
        if selected.len() < n {
            let mut is_selected = vec![false; n];
            for &i in &selected {
                is_selected[i] = true;
            }
            for sb in &sample_box.bisect(sample_box.dim().min(3)) {
                let (mut lo_sum, mut hi_sum) = (0.0f64, 0.0f64);
                for l in 0..n {
                    if is_selected[l] {
                        continue;
                    }
                    let k_near = kernel.eval_dist(sb.min_dist(&xs[l])).expect("isotropic");
                    let k_far = kernel.eval_dist(sb.max_dist(&xs[l])).expect("isotropic");
                    let a = alpha[l];
                    if a >= 0.0 {
                        hi_sum += k_near * a;
                        lo_sum += k_far * a;
                    } else {
                        hi_sum += k_far * a;
                        lo_sum += k_near * a;
                    }
                }
                gamma = gamma.max(hi_sum.abs()).max(lo_sum.abs());
            }
        }
        if gamma <= gamma_threshold || selected.len() == n {
            return selected;
        }
        radius += step;
    }
}

/// Warm read-only inference, scalar vs blocked (the `gp/fastpath` shape):
/// one converged model, a stream of tuple sample-batches. The scalar series
/// is the pre-blocking fast phase end to end ([`reference_select`], a fresh
/// subset factorization per tuple, per-sample `predict`); the blocked
/// series is the current one (scratch-backed selection with hoisted γ
/// brackets, the one-entry predictor cache, `predict_batch_with`). Each
/// local neighborhood appears twice in a row — the clustered-workload case
/// the cache is built for — and the two series are asserted bit-identical
/// (selection and predictions) before any timing.
fn fastpath_axis(smoke: bool) -> String {
    let n_train = if smoke { 96 } else { 256 };
    let tuples = if smoke { 8 } else { 32 };
    let ms: &[usize] = if smoke { &[64] } else { &[64, 256] };
    let reps = if smoke { 3 } else { 7 };
    let gamma = 1e-4;

    let mut model = GpModel::new(Box::new(SquaredExponential::new(1.0, 0.6)), 1);
    let xs: Vec<Vec<f64>> = (0..n_train).map(|i| vec![i as f64 * 0.31]).collect();
    let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.8).sin()).collect();
    model.fit(xs, ys).unwrap();

    let mut arr = JsonArr::new();
    for &m in ms {
        let batches: Vec<Vec<Vec<f64>>> = (0..tuples)
            .map(|t| {
                let mu = 2.0 + ((t / 2) as f64 * 2.3) % 8.0;
                let input = InputDistribution::diagonal_gaussian(&[(mu, 0.25)]).unwrap();
                let mut rng = StdRng::seed_from_u64(1000 + (t / 2) as u64);
                input.sample_n(&mut rng, m)
            })
            .collect();
        let boxes: Vec<BoundingBox> = batches
            .iter()
            .map(|b| BoundingBox::from_points(b.iter().map(|s| s.as_slice())))
            .collect();

        let scalar_pass = || -> Vec<udf_gp::model::Prediction> {
            let mut out = Vec::new();
            for (samples, bbox) in batches.iter().zip(&boxes) {
                let indices = reference_select(&model, bbox, gamma);
                assert!(!indices.is_empty(), "bench selection must be local");
                let lp = LocalPredictor::new(&model, indices).unwrap();
                for s in samples {
                    out.push(lp.predict(s).unwrap());
                }
            }
            out
        };
        let mut select = SelectScratch::default();
        let mut scratch = PredictScratch::default();
        let mut cache = LocalPredictorCache::new();
        let mut preds = Vec::new();
        let mut blocked_pass = |sink: Option<&mut Vec<udf_gp::model::Prediction>>| {
            let mut acc = 0.0f64;
            let mut sink = sink;
            for (samples, bbox) in batches.iter().zip(&boxes) {
                select_local_with(&model, bbox, gamma, &mut select).unwrap();
                let (lp, _) = cache.get_or_build(&model, &select.selected).unwrap();
                lp.predict_batch_with(samples, &mut scratch, &mut preds)
                    .unwrap();
                if let Some(sink) = sink.as_deref_mut() {
                    sink.extend_from_slice(&preds);
                } else {
                    for p in &preds {
                        acc += p.mean + p.var;
                    }
                }
            }
            acc
        };

        // Bit-identity gate: the blocked series must be invisible — same
        // selection, same predictions, to the last bit.
        for bbox in &boxes {
            assert_eq!(
                reference_select(&model, bbox, gamma),
                select_local(&model, bbox, gamma).unwrap().indices,
                "fast-path selection drifted from the reference"
            );
        }
        let scalar_out = scalar_pass();
        let mut blocked_out = Vec::new();
        blocked_pass(Some(&mut blocked_out));
        assert_eq!(scalar_out.len(), blocked_out.len());
        for (s, b) in scalar_out.iter().zip(&blocked_out) {
            assert_eq!(s.mean.to_bits(), b.mean.to_bits(), "blocked mean drifted");
            assert_eq!(s.var.to_bits(), b.var.to_bits(), "blocked var drifted");
        }

        let scalar_ns = median_ns(reps, || {
            scalar_pass().iter().map(|p| p.mean + p.var).sum::<f64>()
        });
        let blocked_ns = median_ns(reps, || blocked_pass(None));
        let (hits, misses) = cache.stats();
        let samples_total = (tuples * m) as u64;
        let mut o = JsonObj::new();
        o.u64("m", m as u64)
            .u64("tuples", tuples as u64)
            .u64("samples", samples_total)
            .u64("scalar_ns", scalar_ns)
            .u64("blocked_ns", blocked_ns)
            .f64(
                "scalar_samples_per_sec",
                samples_total as f64 / (scalar_ns as f64 / 1e9),
            )
            .f64(
                "blocked_samples_per_sec",
                samples_total as f64 / (blocked_ns as f64 / 1e9),
            )
            .f64("speedup", scalar_ns as f64 / blocked_ns as f64)
            .u64("cache_hits", hits)
            .u64("cache_misses", misses);
        arr.raw(&o.finish());
    }
    arr.finish()
}

// ----------------------------------------------------------- uql overhead

/// `run_uql` with the registry on vs. off (the `uql/overhead` acceptance
/// axis: the disabled metrics layer must cost ≈ nothing).
fn uql_axis(smoke: bool) -> String {
    let n = if smoke { 256 } else { 512 };
    let reps = if smoke { 5 } else { 9 };
    let src = "SELECT F1(x) WITH ACCURACY 0.3 0.05 METRIC ks FROM rel \
               WHERE PR(F1(x) IN [0.2, 1.4]) >= 0.4 USING mc WORKERS 1 SEED 7";
    let make_ctx = || {
        let mut ctx = Context::standard();
        let tuples = (0..n)
            .map(|i| {
                Tuple::new(vec![Value::Gaussian {
                    mu: (i as f64 * 0.37) % 10.0,
                    sigma: 0.5,
                }])
            })
            .collect();
        ctx.register_relation("rel", Relation::new(Schema::new(&["x"]), tuples).unwrap());
        ctx
    };
    let rows_of = |ctx: &mut Context| -> usize {
        let QueryOutput::Rows(out) = run_uql(src, ctx).unwrap() else {
            unreachable!("a plain SELECT returns rows")
        };
        out.rows.len()
    };

    let mut ctx_off = make_ctx();
    ctx_off.metrics().set_enabled(false);
    let mut ctx_on = make_ctx();
    let rows_off = rows_of(&mut ctx_off);
    let rows_on = rows_of(&mut ctx_on);
    assert_eq!(rows_off, rows_on, "metrics must never perturb outputs");

    let off_ns = median_ns(reps, || rows_of(&mut ctx_off));
    let on_ns = median_ns(reps, || rows_of(&mut ctx_on));
    let overhead_pct = (on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0;

    let mut o = JsonObj::new();
    o.u64("n", n as u64)
        .u64("reps", reps as u64)
        .u64("rows", rows_on as u64)
        .u64("metrics_off_ns", off_ns)
        .u64("metrics_on_ns", on_ns)
        .f64("overhead_pct", overhead_pct)
        .raw("registry", &ctx_on.metrics().to_json());
    o.finish()
}

// ------------------------------------------------------- monitor overhead

/// The continuous monitor's cost on the query path (the
/// `monitor/overhead` acceptance axis): the same MC query with the
/// context monitor idle vs. sampled — a per-statement tick *plus* a
/// 1 ms background [`udf_obs::Sampler`] running throughout, the
/// heaviest monitoring the REPL can configure. Sampling only reads
/// registry snapshots, so the on-series must cost ≈ nothing extra and
/// rows stay identical.
fn monitor_axis(smoke: bool) -> String {
    let n = if smoke { 256 } else { 512 };
    let reps = if smoke { 5 } else { 9 };
    let src = "SELECT F1(x) WITH ACCURACY 0.3 0.05 METRIC ks FROM rel \
               WHERE PR(F1(x) IN [0.2, 1.4]) >= 0.4 USING mc WORKERS 1 SEED 7";
    let make_ctx = || {
        let mut ctx = Context::standard();
        let tuples = (0..n)
            .map(|i| {
                Tuple::new(vec![Value::Gaussian {
                    mu: (i as f64 * 0.37) % 10.0,
                    sigma: 0.5,
                }])
            })
            .collect();
        ctx.register_relation("rel", Relation::new(Schema::new(&["x"]), tuples).unwrap());
        ctx
    };
    let rows_of = |ctx: &mut Context| -> usize {
        let QueryOutput::Rows(out) = run_uql(src, ctx).unwrap() else {
            unreachable!("a plain SELECT returns rows")
        };
        out.rows.len()
    };

    let mut ctx_off = make_ctx();
    let mut ctx_on = make_ctx();
    let rows_off = rows_of(&mut ctx_off);
    let rows_on = rows_of(&mut ctx_on);
    assert_eq!(rows_off, rows_on, "monitoring must never perturb outputs");

    let monitor_off_ns = median_ns(reps, || rows_of(&mut ctx_off));
    let sampler = ctx_on.monitor().start(std::time::Duration::from_millis(1));
    let monitor_on_ns = median_ns(reps, || {
        let rows = rows_of(&mut ctx_on);
        ctx_on.monitor().tick();
        rows
    });
    drop(sampler);
    let overhead_pct =
        (monitor_on_ns as f64 - monitor_off_ns as f64) / monitor_off_ns as f64 * 100.0;

    let mut o = JsonObj::new();
    o.u64("n", n as u64)
        .u64("reps", reps as u64)
        .u64("rows", rows_on as u64)
        .u64("monitor_off_ns", monitor_off_ns)
        .u64("monitor_on_ns", monitor_on_ns)
        .f64("overhead_pct", overhead_pct)
        .u64("samples", ctx_on.monitor().samples())
        .u64("series", ctx_on.monitor().series_count() as u64)
        .u64("alerts", ctx_on.monitor().alert_log().len() as u64);
    o.finish()
}

// ----------------------------------------------------------- uql prepared

/// Prepared-statement amortization (the `uql/prepared` axis): a plan
/// compiled once and `EXECUTE`d repeatedly vs. re-running the same
/// statement one-shot. The relation series isolates the per-statement
/// fixed cost (parse + bind) the plan cache amortizes away; the
/// PRUNE-join series measures the warm-model restore — re-execution
/// skips the warmup round entirely — with the session registry embedded
/// so the snapshot records the cache hit/miss trail.
fn prepared_axis(smoke: bool) -> String {
    // Relation series: MC query where the front end is a visible share.
    let n = if smoke { 128 } else { 512 };
    let reps = if smoke { 5 } else { 9 };
    let src = "SELECT F1(x) WITH ACCURACY 0.3 0.05 METRIC ks FROM rel \
               WHERE PR(F1(x) IN [0.2, 1.4]) >= 0.4 USING mc WORKERS 1 SEED 7";
    let mut ctx = Context::standard();
    let tuples = (0..n)
        .map(|i| {
            Tuple::new(vec![Value::Gaussian {
                mu: (i as f64 * 0.37) % 10.0,
                sigma: 0.5,
            }])
        })
        .collect();
    ctx.register_relation("rel", Relation::new(Schema::new(&["x"]), tuples).unwrap());
    let one_shot_ns = median_ns(reps, || run_uql(src, &mut ctx).unwrap());
    run_uql(&format!("PREPARE p AS {src}"), &mut ctx).unwrap();
    run_uql("EXECUTE p", &mut ctx).unwrap(); // first execution binds (miss)
    let execute_ns = median_ns(reps, || run_uql("EXECUTE p", &mut ctx).unwrap());
    // The per-statement fixed cost, isolated via plan-only EXPLAIN: a
    // one-shot pays parse + bind every time; a warm EXECUTE is a cache
    // lookup.
    let compile_ns = median_ns(reps, || {
        run_uql(&format!("EXPLAIN {src}"), &mut ctx).unwrap()
    });
    let cached_lookup_ns = median_ns(reps, || run_uql("EXPLAIN EXECUTE p", &mut ctx).unwrap());
    let mut rel = JsonObj::new();
    rel.u64("n", n as u64)
        .u64("reps", reps as u64)
        .u64("one_shot_ns", one_shot_ns)
        .u64("execute_ns", execute_ns)
        .u64("compile_ns", compile_ns)
        .u64("cached_lookup_ns", cached_lookup_ns)
        .u64(
            "fixed_cost_saved_ns",
            compile_ns.saturating_sub(cached_lookup_ns),
        )
        .f64("speedup", one_shot_ns as f64 / execute_ns as f64);

    // Join series: prepared PRUNE join re-executed on one warm GP model.
    let jn = if smoke { 16 } else { 24 };
    let join_src = "SELECT AngDist(a.z, b.z) WITH ACCURACY 0.2 0.05 \
                    FROM g a JOIN g b ON a.objID < b.objID \
                    WHERE PR(AngDist(a.z, b.z) IN [0.3, 0.36]) >= 0.5 \
                    USING gp SEED 9 PRUNE WORKERS 2";
    let mut jctx = Context::standard();
    let tuples = (0..jn)
        .map(|i| {
            Tuple::new(vec![
                Value::Det(i as f64),
                Value::Gaussian {
                    mu: 0.1 + 1.7 * i as f64 / jn as f64,
                    sigma: 0.02,
                },
            ])
        })
        .collect();
    jctx.register_relation(
        "g",
        Relation::new(Schema::new(&["objID", "z"]), tuples).unwrap(),
    );
    let t0 = Instant::now();
    let one_shot = run_uql(join_src, &mut jctx).unwrap();
    let join_one_shot_ns = t0.elapsed().as_nanos() as u64;
    let QueryOutput::Join(one_shot) = one_shot else {
        unreachable!("a JOIN query returns join rows")
    };
    run_uql(&format!("PREPARE j AS {join_src}"), &mut jctx).unwrap();
    let t0 = Instant::now();
    let QueryOutput::Join(first) = run_uql("EXECUTE j", &mut jctx).unwrap() else {
        unreachable!()
    };
    let first_execute_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(
        first.rows.len(),
        one_shot.rows.len(),
        "prepared join must reproduce the one-shot result"
    );
    let warm_execute_ns = median_ns(3, || run_uql("EXECUTE j", &mut jctx).unwrap());
    let mut join = JsonObj::new();
    join.u64("n", jn as u64)
        .u64("one_shot_ns", join_one_shot_ns)
        .u64("first_execute_ns", first_execute_ns)
        .u64("warm_execute_ns", warm_execute_ns)
        .f64(
            "warm_speedup",
            join_one_shot_ns as f64 / warm_execute_ns as f64,
        )
        .raw("registry", &jctx.metrics().to_json());

    let mut o = JsonObj::new();
    o.raw("relation", &rel.finish()).raw("join", &join.finish());
    o.finish()
}

// ------------------------------------------------------------------ main

fn main() {
    // `cargo bench` passes harness flags (`--bench`); ignore them.
    let smoke = std::env::var("TRAJECTORY_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let out_path = std::env::var("TRAJECTORY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json").to_string()
    });

    eprintln!("trajectory: stream_throughput ...");
    let stream = stream_axis(smoke);
    eprintln!("trajectory: gp_model_cap ...");
    let model_cap = model_cap_axis(smoke);
    eprintln!("trajectory: gp_fastpath ...");
    let fastpath = fastpath_axis(smoke);
    eprintln!("trajectory: join_pruning ...");
    let join = join_axis(smoke);
    eprintln!("trajectory: uql_overhead ...");
    let uql = uql_axis(smoke);
    eprintln!("trajectory: monitor_overhead ...");
    let monitor = monitor_axis(smoke);
    eprintln!("trajectory: uql_prepared ...");
    let prepared = prepared_axis(smoke);

    let mut axes = JsonObj::new();
    axes.raw("stream_throughput", &stream)
        .raw("gp_model_cap", &model_cap)
        .raw("gp_fastpath", &fastpath)
        .raw("join_pruning", &join)
        .raw("uql_overhead", &uql)
        .raw("monitor_overhead", &monitor)
        .raw("uql_prepared", &prepared);
    let mut root = JsonObj::new();
    root.u64("schema_version", 1)
        .u64("pr", 10)
        .str("bench", "trajectory")
        .bool("smoke", smoke)
        .raw("axes", &axes.finish());
    let json = root.finish();
    validate(&json).expect("trajectory JSON must be well-formed");

    std::fs::write(&out_path, json + "\n").expect("write BENCH json");
    println!(
        "trajectory: wrote {out_path} (axes: stream_throughput, gp_model_cap, \
         gp_fastpath, join_pruning, uql_overhead, monitor_overhead, uql_prepared; \
         smoke={smoke})"
    );
}
