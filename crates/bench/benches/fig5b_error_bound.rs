//! Fig. 5(b), Profile 2: behavior of the discrepancy error bound vs. λ on
//! Funct4 — the bound must dominate the actual error and tighten as λ grows.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use udf_bench::{as_udf, ground_truth, header, paper_accuracy, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_core::olgapro::Olgapro;
use udf_prob::metrics::lambda_discrepancy;
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Fig 5(b)",
        "Profile 2 — behavior of the error bound (Funct4)",
        "λ (% of range)   actual error   error bound   bound/actual",
    );
    let f = PaperFunction::F4.instantiate(2);
    let range = f.output_range();
    let n_inputs = udf_bench::inputs_per_point().min(20);
    let inputs = standard_inputs(2, n_inputs, 11);

    for lam_pct in [0.5f64, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
        let lambda = lam_pct / 100.0 * range;
        let mut acc = paper_accuracy(range);
        acc.lambda = lambda;
        let cfg = OlgaproConfig::new(acc, range).expect("config");
        let mut olga = Olgapro::new(as_udf(&f, Duration::ZERO), cfg);
        let mut rng = StdRng::seed_from_u64(21);
        let mut truth_rng = StdRng::seed_from_u64(22);
        // Warm-up pass so bounds reflect the converged model (§5.4).
        for input in &inputs {
            olga.process(input, &mut rng).expect("warm-up");
        }
        let (mut err_sum, mut bound_sum) = (0.0, 0.0);
        for input in &inputs {
            let out = olga.process(input, &mut rng).expect("process");
            let truth = ground_truth(&f, input, 20_000, &mut truth_rng);
            err_sum += lambda_discrepancy(&out.y_hat, &truth, lambda);
            bound_sum += out.eps_gp;
        }
        let (err, bound) = (
            err_sum / inputs.len() as f64,
            bound_sum / inputs.len() as f64,
        );
        println!(
            "{:>6.1}%          {:>9.4}     {:>9.4}     {:>6.2}x",
            lam_pct,
            err,
            bound,
            bound / err.max(1e-9)
        );
    }
    println!("\nExpected shape: bound ≥ actual everywhere, ~2-4x, both shrinking as λ grows.");
}
