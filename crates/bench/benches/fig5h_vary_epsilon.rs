//! Fig. 5(h), Expt 4: OLGAPRO running time vs. the user-specified ε for
//! F1–F4 (T = 1 ms).
//!
//! Paper shape: time grows as ε shrinks (m ∝ 1/ε²_MC); flat F1 is about two
//! orders of magnitude cheaper than bumpy F4.

use std::time::Duration;
use udf_bench::{accuracy_with_eps, as_udf, header, run_olgapro, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Fig 5(h)",
        "Expt 4 — OLGAPRO time vs accuracy requirement ε (T = 1 ms)",
        "ε       Funct1 (ms)   Funct2 (ms)   Funct3 (ms)   Funct4 (ms)",
    );
    let n_inputs = udf_bench::inputs_per_point().min(15);
    let t = Duration::from_millis(1);
    for eps in [0.02f64, 0.05, 0.1, 0.15, 0.2] {
        let mut row = format!("{eps:<7}");
        for pf in PaperFunction::ALL {
            let f = pf.instantiate(2);
            let range = f.output_range();
            let acc = accuracy_with_eps(eps, range);
            let cfg = OlgaproConfig::new(acc, range).expect("config");
            let inputs = standard_inputs(2, n_inputs, 90 + pf as u64);
            let r = run_olgapro(&f, as_udf(&f, t), cfg, &inputs, 91);
            row.push_str(&format!(" {:>12.2}", r.time_per_input.as_secs_f64() * 1e3));
        }
        println!("{row}");
    }
    println!("\nExpected shape: time rises steeply as ε → 0.02; F4 ≫ F1 (up to ~100x).");
}
