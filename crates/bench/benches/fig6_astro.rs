//! §6.4 / Fig. 6: the astrophysics case study.
//!
//! * the table of UDF dimensionalities and evaluation times (paper's values
//!   vs. this machine's measured values);
//! * Fig. 6(a): the output pdf of AngDist on an uncertain input pair
//!   (non-Gaussian);
//! * Fig. 6(b,c,d): GP (OLGAPRO) vs. MC running time vs. ε for AngDist,
//!   GalAge, and ComoveVol on the synthetic SDSS-like catalog.
//!
//! Paper shape: OLGAPRO somewhat slower than MC for the very fast AngDist,
//! and 1–2 orders of magnitude faster for GalAge and ComoveVol.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use udf_bench::header;
use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::mc::McEvaluator;
use udf_core::olgapro::Olgapro;
use udf_core::udf::BlackBoxUdf;
use udf_prob::InputDistribution;
use udf_workloads::astro::{astro_udfs, paper_eval_time, Cosmology, GalaxyCatalog};

fn main() {
    let cosmology = Cosmology::default();
    let udfs = astro_udfs(cosmology, 0.1);
    let mut rng = StdRng::seed_from_u64(2013);
    let catalog = GalaxyCatalog::generate(64, &mut rng);

    // ------------------------------------------------------------------
    // Table: dims and evaluation times.
    // ------------------------------------------------------------------
    header(
        "§6.4 table",
        "astro UDFs — dimensionality and evaluation time",
        "FunctName   Dim   paper T (ms)   measured T here (ms)",
    );
    for udf in &udfs {
        let probe = if udf.dim() == 1 {
            vec![vec![0.5], vec![1.0], vec![1.5]]
        } else {
            vec![vec![0.3, 0.9], vec![0.5, 1.5], vec![0.2, 1.8]]
        };
        // Measure the real numerical cost (cost model charges are separate).
        let reps = 200;
        let t0 = Instant::now();
        for _ in 0..reps {
            for p in &probe {
                std::hint::black_box(udf_measure_eval(udf, p));
            }
        }
        let measured = t0.elapsed().as_secs_f64() * 1e3 / (reps * probe.len()) as f64;
        println!(
            "{:<11} {:>3}   {:>10.5}   {:>12.5}",
            udf.name(),
            udf.dim(),
            paper_eval_time(udf.name()).expect("known").as_secs_f64() * 1e3,
            measured
        );
    }

    // ------------------------------------------------------------------
    // Fig 6(a): example output pdf of AngDist.
    // ------------------------------------------------------------------
    println!("\nFig 6(a): output pdf of AngDist on one uncertain pair (histogram)");
    let angdist = udfs[0].fork_counter();
    let input = catalog.pair_input(0, 1);
    let mc = McEvaluator::new(angdist);
    let acc = AccuracyRequirement::new(0.02, 0.05, 0.0, Metric::Ks).expect("valid");
    let out = mc.compute(&input, &acc, &mut rng).expect("mc");
    for (y, density) in out.ecdf.density_histogram(24) {
        let bar = "#".repeat((density / 2.0).min(60.0) as usize);
        println!("  y={y:>7.4}  pdf={density:>8.4}  {bar}");
    }

    // ------------------------------------------------------------------
    // Fig 6(b,c,d): GP vs MC time vs ε per UDF.
    // ------------------------------------------------------------------
    let n_pairs = udf_bench::inputs_per_point().min(20);
    for udf in &udfs {
        println!(
            "\nFig 6({}): {} — time vs ε   [total ms/input = overhead + #calls x paper T]",
            match udf.name() {
                "AngDist" => "b",
                "GalAge" => "c",
                _ => "d",
            },
            udf.name()
        );
        println!("  ε       GP (ms)       MC (ms)    GP model size");
        let inputs: Vec<InputDistribution> = (0..n_pairs)
            .map(|i| {
                if udf.dim() == 1 {
                    catalog.galage_input(i % catalog.len())
                } else {
                    catalog.pair_input(i % catalog.len(), (i * 7 + 1) % catalog.len())
                }
            })
            .collect();
        // Output range estimate for Γ/λ scaling.
        let range = estimate_range(udf, &inputs, &mut rng);
        for eps in [0.02f64, 0.05, 0.1, 0.2] {
            let acc = AccuracyRequirement::new(eps, 0.05, 0.01 * range, Metric::Discrepancy)
                .expect("valid");
            // GP.
            let gp_udf = udf.fork_counter();
            let cfg = OlgaproConfig::new(acc, range).expect("config");
            let mut olga = Olgapro::new(gp_udf.clone(), cfg);
            let mut r = StdRng::seed_from_u64(7);
            let t0 = Instant::now();
            for inp in &inputs {
                olga.process(inp, &mut r).expect("gp");
            }
            let gp_ms =
                (t0.elapsed() + gp_udf.charged_cost()).as_secs_f64() * 1e3 / inputs.len() as f64;
            // MC.
            let mc_udf = udf.fork_counter();
            let mc = McEvaluator::new(mc_udf.clone());
            let mut r = StdRng::seed_from_u64(7);
            let t0 = Instant::now();
            for inp in &inputs {
                mc.compute(inp, &acc, &mut r).expect("mc");
            }
            let mc_ms =
                (t0.elapsed() + mc_udf.charged_cost()).as_secs_f64() * 1e3 / inputs.len() as f64;
            println!(
                "  {eps:<6} {gp_ms:>9.2} {mc_ms:>13.2} {:>12}",
                olga.model().len()
            );
        }
    }
    println!("\nExpected shape: GP ≫ faster for GalAge/ComoveVol; MC competitive for AngDist.");
}

fn udf_measure_eval(udf: &BlackBoxUdf, x: &[f64]) -> f64 {
    udf.eval(x)
}

fn estimate_range(udf: &BlackBoxUdf, inputs: &[InputDistribution], rng: &mut StdRng) -> f64 {
    let probe = udf.fork_counter();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for inp in inputs.iter().take(5) {
        for _ in 0..20 {
            let v = probe.eval(&inp.sample(rng));
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (hi - lo).max(1e-6)
}
