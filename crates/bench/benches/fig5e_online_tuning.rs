//! Fig. 5(e), Expt 2: online tuning — accumulated training points over a
//! stream of inputs for three point-selection heuristics: random,
//! largest-variance (the paper's), and the hypothetical "optimal greedy".
//!
//! Paper shape: largest-variance needs fewer points than random and tracks
//! optimal-greedy closely.

use std::time::Duration;
use udf_bench::{as_udf, header, paper_accuracy, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_core::olgapro::{Olgapro, TuningHeuristic};
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Fig 5(e)",
        "Expt 2 — online tuning heuristics (Funct4, accumulated points added)",
        "calls   Random   LargestVariance   OptimalGreedy",
    );
    let f = PaperFunction::F4.instantiate(2);
    let range = f.output_range();
    let acc = paper_accuracy(range);
    let n_calls = udf_bench::inputs_per_point().min(40);
    let inputs = standard_inputs(2, n_calls, 55);

    let heuristics = [
        TuningHeuristic::Random,
        TuningHeuristic::LargestVariance,
        TuningHeuristic::OptimalGreedy,
    ];
    let mut curves: Vec<Vec<u64>> = Vec::new();
    for h in heuristics {
        let cfg = OlgaproConfig::new(acc, range).expect("config");
        let mut olga = Olgapro::new(as_udf(&f, Duration::ZERO), cfg).with_tuning(h);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(56);
        let mut curve = Vec::with_capacity(inputs.len());
        for input in &inputs {
            olga.process(input, &mut rng).expect("process");
            curve.push(olga.stats().points_added);
        }
        curves.push(curve);
    }
    for (i, _) in inputs.iter().enumerate() {
        if i % 2 == 0 || i + 1 == inputs.len() {
            println!(
                "{:>5}   {:>6}   {:>15}   {:>13}",
                i + 1,
                curves[0][i],
                curves[1][i],
                curves[2][i]
            );
        }
    }
    println!("\nExpected shape: LargestVariance ≤ Random, close to OptimalGreedy.");
}
