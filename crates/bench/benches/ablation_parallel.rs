//! Ablation D: batch-parallel stream processing (the §8 future-work
//! extension) — steady-state batch latency vs. worker count.
//!
//! Expected shape: warm batches are read-only and scale with workers;
//! the warm-up batch is dominated by sequential tuning and does not.

use std::time::{Duration, Instant};
use udf_bench::{as_udf, header, paper_accuracy, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_core::olgapro::Olgapro;
use udf_core::parallel::ParallelOlgapro;
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Ablation D",
        "parallel batch processing (Funct3, steady-state batches)",
        "workers   warm-up (ms)   steady batch (ms)   speedup vs 1 worker   fast-path",
    );
    let f = PaperFunction::F3.instantiate(2);
    let range = f.output_range();
    let acc = paper_accuracy(range);
    let batch = standard_inputs(2, 32, 300);

    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let cfg = OlgaproConfig::new(acc, range).expect("config");
        let olga = Olgapro::new(as_udf(&f, Duration::ZERO), cfg);
        let mut par = ParallelOlgapro::new(olga, workers);
        let t0 = Instant::now();
        par.process_batch(&batch, 1).expect("warm-up batch");
        let warm = t0.elapsed();
        // Second warm-up to fully converge, then measure.
        par.process_batch(&batch, 2).expect("second warm-up");
        let t1 = Instant::now();
        let (_, stats) = par.process_batch(&batch, 3).expect("steady batch");
        let steady = t1.elapsed();
        let base = *baseline.get_or_insert(steady.as_secs_f64());
        println!(
            "{workers:<9} {:>10.1} {:>17.1} {:>17.2}x {:>11}",
            warm.as_secs_f64() * 1e3,
            steady.as_secs_f64() * 1e3,
            base / steady.as_secs_f64(),
            stats.fast_path,
        );
    }
}
