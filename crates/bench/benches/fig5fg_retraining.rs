//! Fig. 5(f,g), Expt 3: retraining strategies — accuracy and running time
//! as the Newton-step threshold Δ varies, compared with eager retraining and
//! no retraining (Funct4).
//!
//! Paper shape: small Δ ≈ eager accuracy at lower cost; very large Δ ≈ no
//! retraining and degrades accuracy; Δ ≲ 0.5 is the sweet spot.

use std::time::{Duration, Instant};
use udf_bench::{as_udf, ground_truth, header, paper_accuracy, standard_inputs};
use udf_core::config::{OlgaproConfig, RetrainStrategy};
use udf_core::olgapro::Olgapro;
use udf_prob::metrics::lambda_discrepancy;
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Fig 5(f,g)",
        "Expt 3 — retraining strategies (Funct4)",
        "strategy           mean error   time (ms/input)   retrains",
    );
    let f = PaperFunction::F4.instantiate(2);
    let range = f.output_range();
    let acc = paper_accuracy(range);
    let n_inputs = udf_bench::inputs_per_point().min(25);
    let inputs = standard_inputs(2, n_inputs, 77);

    let mut strategies: Vec<(String, RetrainStrategy)> = vec![
        ("Eager".into(), RetrainStrategy::Eager),
        ("NoRetraining".into(), RetrainStrategy::Never),
    ];
    for dt in [0.001, 0.01, 0.05, 0.1, 0.5, 1.0] {
        strategies.push((format!("Δ={dt}"), RetrainStrategy::NewtonThreshold(dt)));
    }

    for (label, strat) in strategies {
        let mut cfg = OlgaproConfig::new(acc, range).expect("config");
        cfg.retrain = strat;
        // Start with a deliberately misfit lengthscale so retraining matters.
        cfg.init_lengthscale = 4.0;
        let udf = as_udf(&f, Duration::ZERO);
        let mut olga = Olgapro::new(udf, cfg);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(78);
        let mut truth_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(79);
        let t0 = Instant::now();
        let mut outs = Vec::new();
        for input in &inputs {
            outs.push(olga.process(input, &mut rng).expect("process"));
        }
        let per_input = t0.elapsed().as_secs_f64() / inputs.len() as f64;
        let mut err = 0.0;
        for (input, out) in inputs.iter().zip(&outs) {
            let truth = ground_truth(&f, input, 20_000, &mut truth_rng);
            err += lambda_discrepancy(&out.y_hat, &truth, acc.lambda);
        }
        println!(
            "{:<18} {:>9.4}    {:>11.2}      {:>5}",
            label,
            err / inputs.len() as f64,
            per_input * 1e3,
            olga.stats().retrains
        );
    }
    println!("\nExpected shape: thresholded ≈ eager accuracy with fewer retrains; Never is fastest but least accurate.");
}
