//! Streaming-engine throughput: tuples/sec as a function of worker count
//! and of concurrent query count.
//!
//! Three axes:
//!
//! * `workers_blocking` — an expensive *blocking* UDF (a real 50 µs sleep
//!   per call, the shape of an external service or I/O-bound UDF): worker
//!   threads overlap the blocking time, so throughput scales with the
//!   worker count even on a single core;
//! * `workers_cpu` — a free CPU-bound UDF: scaling here tracks the
//!   machine's physical parallelism (flat on a 1-core container);
//! * `queries` — fixed workers, growing subscription count: measures the
//!   engine's multi-query overhead.
//!
//! Plus `stream_100k`: the acceptance-scale workload — 100 000 tuples into
//! 4 concurrent MC subscriptions (two of them filtered selections), and
//! `dispatch` — the scheduler-core comparison: dispatching a micro-batch
//! onto the persistent `BatchScheduler` pool vs. spawning a fresh
//! `std::thread::scope` per batch (what the engine did before the pool).
//!
//! ```sh
//! cargo bench --bench stream_throughput
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::sched::{mix_seed, BatchScheduler};
use udf_core::udf::BlackBoxUdf;
use udf_stream::prelude::*;

fn acc() -> AccuracyRequirement {
    // ε = 0.3 keeps the MC sample count small (m ≈ 21) so one bench
    // iteration stays sub-second even with a blocking UDF.
    AccuracyRequirement::new(0.3, 0.05, 0.0, Metric::Ks).unwrap()
}

fn blocking_udf(sleep: Duration) -> BlackBoxUdf {
    BlackBoxUdf::from_fn("blocking", 1, move |x| {
        std::thread::sleep(sleep);
        (x[0] * 0.8).sin()
    })
}

fn free_udf() -> BlackBoxUdf {
    BlackBoxUdf::from_fn("free", 1, |x| (x[0] * 0.8).sin())
}

/// Run `queries` MC subscriptions over `tuples` synthetic tuples.
fn run_session(udf: &BlackBoxUdf, queries: usize, workers: usize, tuples: u64) -> u64 {
    let mut session = Session::new(EngineConfig::new().workers(workers).batch_size(128).seed(7));
    for i in 0..queries {
        session
            .subscribe(QuerySpec::new(
                format!("q{i}"),
                udf.clone(),
                acc(),
                StreamStrategy::Mc,
            ))
            .unwrap();
    }
    let stats = session
        .run(
            SyntheticSource::gaussian(1, 0.5, 11).with_limit(tuples),
            None,
        )
        .unwrap();
    stats.tuples
}

fn bench_workers_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/workers_blocking");
    let tuples = 64u64;
    let udf = blocking_udf(Duration::from_micros(50));
    g.throughput(Throughput::Elements(tuples));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("tuples", workers), &workers, |b, &w| {
            b.iter(|| run_session(&udf, 1, w, tuples))
        });
    }
    g.finish();
}

fn bench_workers_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/workers_cpu");
    let tuples = 2048u64;
    let udf = free_udf();
    g.throughput(Throughput::Elements(tuples));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("tuples", workers), &workers, |b, &w| {
            b.iter(|| run_session(&udf, 1, w, tuples))
        });
    }
    g.finish();
}

fn bench_query_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/queries");
    let tuples = 1024u64;
    let udf = free_udf();
    for queries in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(tuples * queries as u64));
        g.bench_with_input(
            BenchmarkId::new("tuple_evals", queries),
            &queries,
            |b, &q| b.iter(|| run_session(&udf, q, 2, tuples)),
        );
    }
    g.finish();
}

/// The acceptance-scale workload: 100k tuples × 4 concurrent queries
/// (400k tuple-evaluations per iteration), two of them filtered.
fn bench_100k_mixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/100k_x4");
    let tuples = 100_000u64;
    g.throughput(Throughput::Elements(tuples * 4));
    g.bench_function("tuple_evals", |b| {
        b.iter(|| {
            let udf = free_udf();
            let mut session =
                Session::new(EngineConfig::new().workers(2).batch_size(1024).seed(42));
            let pred = Predicate::new(0.2, 1.5, 0.5).unwrap();
            for i in 0..4 {
                let mut spec =
                    QuerySpec::new(format!("q{i}"), udf.clone(), acc(), StreamStrategy::Mc);
                if i % 2 == 1 {
                    spec = spec.predicate(pred);
                }
                session.subscribe(spec).unwrap();
            }
            let stats = session
                .run(
                    SyntheticSource::gaussian(1, 0.5, 3).with_limit(tuples),
                    None,
                )
                .unwrap();
            assert_eq!(stats.tuples, tuples);
            stats.tuples
        })
    });
    g.finish();
}

/// The old per-batch dispatch: carve the batch into one fixed shard per
/// worker and spawn a fresh `std::thread::scope` — thread creation and
/// teardown on every call, which is what the engine paid per micro-batch
/// per query before the persistent pool.
fn scoped_map<T: Send>(n: usize, workers: usize, f: &(impl Fn(usize) -> T + Sync)) -> Vec<T> {
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lo = (w * chunk).min(n);
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<_>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Persistent-pool vs. scoped-spawn dispatch overhead at stream micro-batch
/// sizes. The per-tuple work is fast-path-shaped (derive the tuple RNG,
/// draw a few samples) so the fixed dispatch cost dominates — the regime
/// every small micro-batch of every subscription hits.
fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/dispatch");
    let workers = 4usize;
    for n in [32usize, 256] {
        let work = |i: usize| {
            let mut rng = StdRng::seed_from_u64(mix_seed(7, 0, i as u64));
            let mut acc = 0.0f64;
            for _ in 0..16 {
                acc += (rng.gen::<f64>() * (i as f64)).sin();
            }
            acc
        };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("scoped_spawn", n), &n, |b, &n| {
            b.iter(|| scoped_map(n, workers, &work))
        });
        let sched = BatchScheduler::new(workers);
        g.bench_with_input(BenchmarkId::new("persistent_pool", n), &n, |b, &n| {
            b.iter(|| sched.try_map(n, work).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    targets = bench_dispatch, bench_workers_blocking, bench_workers_cpu, bench_query_count,
        bench_100k_mixed
}
criterion_main!(benches);
