//! Streaming-engine throughput: tuples/sec as a function of worker count
//! and of concurrent query count.
//!
//! Three axes:
//!
//! * `workers_blocking` — an expensive *blocking* UDF (a real 50 µs sleep
//!   per call, the shape of an external service or I/O-bound UDF): worker
//!   threads overlap the blocking time, so throughput scales with the
//!   worker count even on a single core;
//! * `workers_cpu` — a free CPU-bound UDF: scaling here tracks the
//!   machine's physical parallelism (flat on a 1-core container);
//! * `queries` — fixed workers, growing subscription count: measures the
//!   engine's multi-query overhead.
//!
//! Plus `stream_100k`: the acceptance-scale workload — 100 000 tuples into
//! 4 concurrent MC subscriptions (two of them filtered selections).
//!
//! ```sh
//! cargo bench --bench stream_throughput
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use udf_core::config::{AccuracyRequirement, Metric};
use udf_core::filtering::Predicate;
use udf_core::udf::BlackBoxUdf;
use udf_stream::prelude::*;

fn acc() -> AccuracyRequirement {
    // ε = 0.3 keeps the MC sample count small (m ≈ 21) so one bench
    // iteration stays sub-second even with a blocking UDF.
    AccuracyRequirement::new(0.3, 0.05, 0.0, Metric::Ks).unwrap()
}

fn blocking_udf(sleep: Duration) -> BlackBoxUdf {
    BlackBoxUdf::from_fn("blocking", 1, move |x| {
        std::thread::sleep(sleep);
        (x[0] * 0.8).sin()
    })
}

fn free_udf() -> BlackBoxUdf {
    BlackBoxUdf::from_fn("free", 1, |x| (x[0] * 0.8).sin())
}

/// Run `queries` MC subscriptions over `tuples` synthetic tuples.
fn run_session(udf: &BlackBoxUdf, queries: usize, workers: usize, tuples: u64) -> u64 {
    let mut session = Session::new(EngineConfig::new().workers(workers).batch_size(128).seed(7));
    for i in 0..queries {
        session
            .subscribe(QuerySpec::new(
                format!("q{i}"),
                udf.clone(),
                acc(),
                StreamStrategy::Mc,
            ))
            .unwrap();
    }
    let stats = session
        .run(
            SyntheticSource::gaussian(1, 0.5, 11).with_limit(tuples),
            None,
        )
        .unwrap();
    stats.tuples
}

fn bench_workers_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/workers_blocking");
    let tuples = 64u64;
    let udf = blocking_udf(Duration::from_micros(50));
    g.throughput(Throughput::Elements(tuples));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("tuples", workers), &workers, |b, &w| {
            b.iter(|| run_session(&udf, 1, w, tuples))
        });
    }
    g.finish();
}

fn bench_workers_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/workers_cpu");
    let tuples = 2048u64;
    let udf = free_udf();
    g.throughput(Throughput::Elements(tuples));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("tuples", workers), &workers, |b, &w| {
            b.iter(|| run_session(&udf, 1, w, tuples))
        });
    }
    g.finish();
}

fn bench_query_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/queries");
    let tuples = 1024u64;
    let udf = free_udf();
    for queries in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(tuples * queries as u64));
        g.bench_with_input(
            BenchmarkId::new("tuple_evals", queries),
            &queries,
            |b, &q| b.iter(|| run_session(&udf, q, 2, tuples)),
        );
    }
    g.finish();
}

/// The acceptance-scale workload: 100k tuples × 4 concurrent queries
/// (400k tuple-evaluations per iteration), two of them filtered.
fn bench_100k_mixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream/100k_x4");
    let tuples = 100_000u64;
    g.throughput(Throughput::Elements(tuples * 4));
    g.bench_function("tuple_evals", |b| {
        b.iter(|| {
            let udf = free_udf();
            let mut session =
                Session::new(EngineConfig::new().workers(2).batch_size(1024).seed(42));
            let pred = Predicate::new(0.2, 1.5, 0.5).unwrap();
            for i in 0..4 {
                let mut spec =
                    QuerySpec::new(format!("q{i}"), udf.clone(), acc(), StreamStrategy::Mc);
                if i % 2 == 1 {
                    spec = spec.predicate(pred);
                }
                session.subscribe(spec).unwrap();
            }
            let stats = session
                .run(
                    SyntheticSource::gaussian(1, 0.5, 3).with_limit(tuples),
                    None,
                )
                .unwrap();
            assert_eq!(stats.tuples, tuples);
            stats.tuples
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    targets = bench_workers_blocking, bench_workers_cpu, bench_query_count, bench_100k_mixed
}
criterion_main!(benches);
