//! Ablation studies beyond the paper's figures (DESIGN.md §4):
//!
//! * **Kernels** — SE vs. Matérn 3/2 vs. 5/2 on a smooth and a bumpy
//!   function (the paper asserts SE suffices for its UDFs; quantify it);
//! * **Incremental Cholesky** — the §5.2 block update vs. refactorization;
//! * **ε split** — sensitivity to the ε_MC : ε_GP allocation (Profile 3
//!   recommends 0.7).

use rand::SeedableRng;
use std::time::{Duration, Instant};
use udf_bench::{as_udf, ground_truth, header, paper_accuracy, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_core::olgapro::Olgapro;
use udf_core::udf::UdfFunction;
use udf_gp::{GpModel, Kernel, Matern32, Matern52, SquaredExponential};
use udf_prob::metrics::lambda_discrepancy;
use udf_workloads::synthetic::PaperFunction;

fn main() {
    kernels();
    incremental();
    eps_split();
}

fn kernels() {
    header(
        "Ablation A",
        "kernel choice (mean actual error after OLGAPRO, F1 smooth / F4 bumpy)",
        "kernel      Funct1 err   Funct4 err   Funct4 points",
    );
    let n_inputs = udf_bench::inputs_per_point().min(12);
    type KernelFactory = Box<dyn Fn() -> Box<dyn Kernel>>;
    let kernels: Vec<(&str, KernelFactory)> = vec![
        (
            "SE",
            Box::new(|| Box::new(SquaredExponential::new(1.0, 1.0))),
        ),
        ("Matern32", Box::new(|| Box::new(Matern32::new(1.0, 1.0)))),
        ("Matern52", Box::new(|| Box::new(Matern52::new(1.0, 1.0)))),
    ];
    for (name, mk) in &kernels {
        let mut row = format!("{name:<11}");
        let mut f4_points = 0;
        for pf in [PaperFunction::F1, PaperFunction::F4] {
            let f = pf.instantiate(2);
            let range = f.output_range();
            let acc = paper_accuracy(range);
            let cfg = OlgaproConfig::new(acc, range).expect("config");
            let inputs = standard_inputs(2, n_inputs, 200);
            let mut olga = Olgapro::with_kernel(as_udf(&f, Duration::ZERO), cfg, mk());
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(201);
            let mut truth_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(202);
            let mut err = 0.0;
            for inp in &inputs {
                let out = olga.process(inp, &mut rng).expect("process");
                let truth = ground_truth(&f, inp, 20_000, &mut truth_rng);
                err += lambda_discrepancy(&out.y_hat, &truth, acc.lambda);
            }
            row.push_str(&format!(" {:>10.4}", err / inputs.len() as f64));
            if pf == PaperFunction::F4 {
                f4_points = olga.model().len();
            }
        }
        println!("{row}   {f4_points:>10}");
    }
}

fn incremental() {
    header(
        "Ablation B",
        "incremental Cholesky append vs full refactorization",
        "n        incremental (ms)   refactor (ms)   speedup",
    );
    let f = PaperFunction::F3.instantiate(2);
    use rand::Rng;
    for n in [50usize, 100, 200, 400] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(n as u64);
        let pts: Vec<(Vec<f64>, f64)> = (0..n)
            .map(|_| {
                let x = vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)];
                let y = f.eval(&x);
                (x, y)
            })
            .collect();
        // Incremental adds.
        let t0 = Instant::now();
        let mut inc = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 2);
        for (x, y) in &pts {
            inc.add_point(x.clone(), *y).expect("add");
        }
        let t_inc = t0.elapsed();
        // Refit from scratch after each point (what §5.2 avoids).
        let t1 = Instant::now();
        let mut from_scratch = GpModel::new(Box::new(SquaredExponential::new(1.0, 1.0)), 2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (x, y) in &pts {
            let _ = &mut rng2;
            xs.push(x.clone());
            ys.push(*y);
            from_scratch.fit(xs.clone(), ys.clone()).expect("fit");
        }
        let t_ref = t1.elapsed();
        println!(
            "{n:<8} {:>14.2} {:>15.2} {:>9.1}x",
            t_inc.as_secs_f64() * 1e3,
            t_ref.as_secs_f64() * 1e3,
            t_ref.as_secs_f64() / t_inc.as_secs_f64().max(1e-9)
        );
    }
}

fn eps_split() {
    header(
        "Ablation C",
        "ε_MC fraction (Profile 3 recommends 0.7) — Funct4, T = 1 ms",
        "mc_fraction   time (ms/input)   mean error   UDF calls/input",
    );
    let f = PaperFunction::F4.instantiate(2);
    let range = f.output_range();
    let n_inputs = udf_bench::inputs_per_point().min(12);
    let inputs = standard_inputs(2, n_inputs, 210);
    for frac in [0.3f64, 0.5, 0.7, 0.9] {
        let acc = paper_accuracy(range);
        let mut cfg = OlgaproConfig::new(acc, range).expect("config");
        cfg.mc_fraction = frac;
        let udf = as_udf(&f, Duration::from_millis(1));
        let mut olga = Olgapro::new(udf.clone(), cfg);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(211);
        let mut truth_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(212);
        let t0 = Instant::now();
        let mut outs = Vec::new();
        for inp in &inputs {
            outs.push(olga.process(inp, &mut rng).expect("process"));
        }
        let total = t0.elapsed() + udf.charged_cost();
        let mut err = 0.0;
        for (inp, out) in inputs.iter().zip(&outs) {
            let truth = ground_truth(&f, inp, 20_000, &mut truth_rng);
            err += lambda_discrepancy(&out.y_hat, &truth, paper_accuracy(range).lambda);
        }
        println!(
            "{frac:<13} {:>13.2} {:>12.4} {:>12.1}",
            total.as_secs_f64() * 1e3 / inputs.len() as f64,
            err / inputs.len() as f64,
            udf.calls() as f64 / inputs.len() as f64
        );
    }
    println!("\nExpected shape: small mc_fraction inflates sample counts; large starves the GP budget; 0.7 balanced.");
}
