//! Fig. 5(j,k), Expt 6: online filtering with selection predicates — running
//! time and false-positive rate as the filtering rate varies, for MC and GP
//! with and without online filtering (θ = 0.1, T = 1 ms).
//!
//! Paper shape: at high filtering rates, online filtering buys ~5x (MC) and
//! up to ~30x (GP); false-positive rates stay below 10%, false negatives ~0.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use udf_bench::{as_udf, ground_truth, header, paper_accuracy, standard_inputs};
use udf_core::config::OlgaproConfig;
use udf_core::filtering::{gp_filtered, mc_filtered, Predicate};
use udf_core::mc::McEvaluator;
use udf_core::olgapro::Olgapro;
use udf_workloads::synthetic::PaperFunction;

fn main() {
    header(
        "Fig 5(j,k)",
        "Expt 6 — online filtering (Funct3, θ = 0.1, T = 1 ms)",
        "pred          filter%   MC(ms)  MC+OF(ms)   GP(ms)  GP+OF(ms)   FP:MC+OF  FP:GP+OF",
    );
    // Funct3: its output mass spreads over the range, so interval cuts give
    // controllable intermediate filter rates (Funct4 piles ~90% of tuples
    // into one indistinguishable near-zero cluster).
    let f = PaperFunction::F3.instantiate(2);
    let range = f.output_range();
    let acc = paper_accuracy(range);
    let theta = 0.1;
    let t = Duration::from_millis(1);
    let n_inputs = udf_bench::inputs_per_point().min(25);
    let inputs = standard_inputs(2, n_inputs, 120);

    // Predicates with increasing selectivity. Funct4's output mass piles up
    // near zero, so absolute thresholds are degenerate; instead place the
    // interval's lower bound at quantiles of the *pooled per-tuple TEP
    // behaviour*: for each candidate cut, the filter rate is the fraction of
    // tuples whose own output mass above the cut is below θ. We search cuts
    // hitting approximately the paper's filter rates {0.19, 0.72, 0.82, 0.97}.
    let mut truth_rng0 = StdRng::seed_from_u64(119);
    let truths: Vec<_> = inputs
        .iter()
        .map(|inp| ground_truth(&f, inp, 8_000, &mut truth_rng0))
        .collect();
    let filter_rate_at = |cut: f64| -> f64 {
        truths
            .iter()
            .filter(|t| t.interval_prob(cut, range * 2.0) < theta)
            .count() as f64
            / truths.len() as f64
    };
    let cut_for = |target: f64| -> f64 {
        // Bisection over the cut; filter rate is nondecreasing in the cut.
        let (mut lo, mut hi) = (0.0f64, range);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if filter_rate_at(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let preds: Vec<Predicate> = [0.19, 0.72, 0.82, 0.97]
        .into_iter()
        .map(|r| Predicate::new(cut_for(r), range * 2.0, theta).expect("predicate"))
        .collect();

    for pred in preds {
        // Oracle: which tuples *should* pass (TEP ≥ θ under ground truth).
        let mut truth_rng = StdRng::seed_from_u64(121);
        let should_pass: Vec<bool> = inputs
            .iter()
            .map(|inp| {
                let truth = ground_truth(&f, inp, 20_000, &mut truth_rng);
                truth.interval_prob(pred.lo, pred.hi) >= theta
            })
            .collect();
        let filter_rate = should_pass.iter().filter(|b| !**b).count() as f64 / inputs.len() as f64;

        // --- MC without online filtering: always full computation.
        let udf = as_udf(&f, t);
        let mc = McEvaluator::new(udf.clone());
        let mut rng = StdRng::seed_from_u64(122);
        let t0 = Instant::now();
        for inp in &inputs {
            mc.compute(inp, &acc, &mut rng).expect("mc");
        }
        let mc_ms = per_input_ms(t0.elapsed() + udf.charged_cost(), inputs.len());

        // --- MC with online filtering.
        let udf = as_udf(&f, t);
        let mut rng = StdRng::seed_from_u64(122);
        let t0 = Instant::now();
        let mut mc_of_kept = vec![false; inputs.len()];
        for (i, inp) in inputs.iter().enumerate() {
            mc_of_kept[i] = !mc_filtered(&udf, inp, &acc, &pred, &mut rng)
                .expect("mc_filtered")
                .is_filtered();
        }
        let mc_of_ms = per_input_ms(t0.elapsed() + udf.charged_cost(), inputs.len());

        // --- GP without online filtering (process everything fully).
        // Warm up on the stream once (paper measures warm-stream behaviour).
        let udf = as_udf(&f, t);
        let cfg = OlgaproConfig::new(acc, range).expect("config");
        let mut olga = Olgapro::new(udf.clone(), cfg.clone());
        let mut rng = StdRng::seed_from_u64(123);
        for inp in &inputs {
            olga.process(inp, &mut rng).expect("gp warm-up");
        }
        udf.reset_calls();
        let t0 = Instant::now();
        for inp in &inputs {
            olga.process(inp, &mut rng).expect("gp");
        }
        let gp_ms = per_input_ms(t0.elapsed() + udf.charged_cost(), inputs.len());

        // --- GP with online filtering (same warm-up).
        let udf = as_udf(&f, t);
        let mut olga = Olgapro::new(udf.clone(), cfg);
        let mut rng = StdRng::seed_from_u64(123);
        for inp in &inputs {
            olga.process(inp, &mut rng).expect("gp warm-up");
        }
        udf.reset_calls();
        let t0 = Instant::now();
        let mut gp_of_kept = vec![false; inputs.len()];
        for (i, inp) in inputs.iter().enumerate() {
            gp_of_kept[i] = !gp_filtered(&mut olga, inp, &pred, &mut rng)
                .expect("gp_filtered")
                .is_filtered();
        }
        let gp_of_ms = per_input_ms(t0.elapsed() + udf.charged_cost(), inputs.len());

        // False positives: kept although the oracle filters them.
        let fp = |kept: &[bool]| -> f64 {
            let fp_count = kept
                .iter()
                .zip(&should_pass)
                .filter(|(k, s)| **k && !**s)
                .count();
            let filtered_total = should_pass.iter().filter(|s| !**s).count();
            if filtered_total == 0 {
                0.0
            } else {
                fp_count as f64 / filtered_total as f64
            }
        };

        println!(
            "[{:>5.2},{:>5.2}]  {:>5.2}   {:>7.1} {:>9.1} {:>9.1} {:>9.1}     {:>6.3}    {:>6.3}",
            pred.lo,
            pred.hi,
            filter_rate,
            mc_ms,
            mc_of_ms,
            gp_ms,
            gp_of_ms,
            fp(&mc_of_kept),
            fp(&gp_of_kept),
        );
    }
    println!(
        "\nExpected shape: MC+OF and GP+OF shrink with filter rate (up to ~5x / ~30x); FP < 0.1."
    );
}

fn per_input_ms(d: Duration, n: usize) -> f64 {
    d.as_secs_f64() * 1e3 / n as f64
}
