//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every `benches/fig*.rs` target regenerates one table or figure from §6
//! of the paper. The harness reports **total time = measured algorithm
//! overhead + charged UDF cost** (`#calls × T` under the simulated cost
//! model), which is exactly the trade-off the paper's wall-clock numbers
//! measure — see DESIGN.md §3 for the substitution argument.

pub mod gate;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig};
use udf_core::mc::McEvaluator;
use udf_core::olgapro::Olgapro;
use udf_core::udf::{BlackBoxUdf, CostModel, UdfFunction};
use udf_prob::metrics::lambda_discrepancy;
use udf_prob::{Ecdf, InputDistribution};
use udf_workloads::synthetic::{generate_inputs, GaussianMixtureFn, InputKind};

/// Default experiment scale. The paper averages over 500 output
/// distributions; the bench targets default to fewer inputs so the full
/// suite completes in minutes — override with `UDF_BENCH_INPUTS`.
pub fn inputs_per_point() -> usize {
    std::env::var("UDF_BENCH_INPUTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30)
}

/// The paper's default accuracy requirement (§6.1-C): ε = 0.1, δ = 0.05,
/// λ = 1% of the function's output range.
pub fn paper_accuracy(output_range: f64) -> AccuracyRequirement {
    AccuracyRequirement::new(0.1, 0.05, 0.01 * output_range, Metric::Discrepancy)
        .expect("valid constants")
}

/// Like [`paper_accuracy`] with an explicit ε.
pub fn accuracy_with_eps(eps: f64, output_range: f64) -> AccuracyRequirement {
    AccuracyRequirement::new(eps, 0.05, 0.01 * output_range, Metric::Discrepancy)
        .expect("valid constants")
}

/// Result of running one evaluator over a stream of inputs.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Mean per-input total time (overhead + charged UDF cost).
    pub time_per_input: Duration,
    /// Mean per-input UDF calls.
    pub calls_per_input: f64,
    /// Mean actual λ-discrepancy against a ground-truth reference.
    pub mean_error: f64,
    /// Max actual error observed.
    pub max_error: f64,
}

/// Ground truth: the output ECDF from evaluating the *true* function on
/// `n_ref` input samples (cost model bypassed — this is the experimenter's
/// oracle, not part of the measured algorithm).
pub fn ground_truth(
    f: &dyn UdfFunction,
    input: &InputDistribution,
    n_ref: usize,
    rng: &mut StdRng,
) -> Ecdf {
    let samples: Vec<f64> = (0..n_ref)
        .map(|_| {
            let x = input.sample(rng);
            f.eval(&x)
        })
        .collect();
    Ecdf::new(samples).expect("finite reference outputs")
}

/// Run OLGAPRO over an input stream, measuring time, calls, and actual
/// error against ground truth.
///
/// The stream is processed once *unmeasured* first (warm-up): the paper
/// averages over 500 tuples, where almost all tuples see a converged model;
/// with the bench's shorter streams, measuring from cold would over-weight
/// the one-off training phase. Reported numbers are steady-state per-tuple
/// costs, matching the paper's "at convergence" discussion (§5.4).
pub fn run_olgapro(
    f: &GaussianMixtureFn,
    udf: BlackBoxUdf,
    config: OlgaproConfig,
    inputs: &[InputDistribution],
    seed: u64,
) -> RunResult {
    let mut olga = Olgapro::new(udf.clone(), config.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut truth_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let lambda = config.accuracy.lambda;
    // Warm-up pass (unmeasured).
    for input in inputs {
        olga.process(input, &mut rng).expect("olgapro warm-up");
    }
    udf.reset_calls();
    let t0 = Instant::now();
    let mut outs = Vec::with_capacity(inputs.len());
    for input in inputs {
        outs.push(olga.process(input, &mut rng).expect("olgapro run"));
    }
    let overhead = t0.elapsed();
    let total = overhead + udf.charged_cost();

    let (mut err_sum, mut err_max) = (0.0f64, 0.0f64);
    for (input, out) in inputs.iter().zip(&outs) {
        let truth = ground_truth(f, input, 20_000, &mut truth_rng);
        let e = lambda_discrepancy(&out.y_hat, &truth, lambda);
        err_sum += e;
        err_max = err_max.max(e);
    }
    RunResult {
        time_per_input: total / inputs.len() as u32,
        calls_per_input: udf.calls() as f64 / inputs.len() as f64,
        mean_error: err_sum / inputs.len() as f64,
        max_error: err_max,
    }
}

/// Run the MC baseline over an input stream.
pub fn run_mc(
    f: &GaussianMixtureFn,
    udf: BlackBoxUdf,
    accuracy: AccuracyRequirement,
    inputs: &[InputDistribution],
    seed: u64,
) -> RunResult {
    let mc = McEvaluator::new(udf.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut truth_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let t0 = Instant::now();
    let mut outs = Vec::with_capacity(inputs.len());
    for input in inputs {
        outs.push(mc.compute(input, &accuracy, &mut rng).expect("mc run"));
    }
    let overhead = t0.elapsed();
    let total = overhead + udf.charged_cost();

    let (mut err_sum, mut err_max) = (0.0f64, 0.0f64);
    for (input, out) in inputs.iter().zip(&outs) {
        let truth = ground_truth(f, input, 20_000, &mut truth_rng);
        let e = lambda_discrepancy(&out.ecdf, &truth, accuracy.lambda);
        err_sum += e;
        err_max = err_max.max(e);
    }
    RunResult {
        time_per_input: total / inputs.len() as u32,
        calls_per_input: udf.calls() as f64 / inputs.len() as f64,
        mean_error: err_sum / inputs.len() as f64,
        max_error: err_max,
    }
}

/// Standard workload: a paper function at dimension `d` with `n` Gaussian
/// inputs (σ_I = 0.5, §6.1-B default).
pub fn standard_inputs(d: usize, n: usize, seed: u64) -> Vec<InputDistribution> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_inputs(InputKind::Gaussian, d, n, 0.5, &mut rng)
}

/// Wrap a synthetic function as a black-box UDF with simulated cost `t`.
pub fn as_udf(f: &GaussianMixtureFn, t: Duration) -> BlackBoxUdf {
    let cost = if t.is_zero() {
        CostModel::Free
    } else {
        CostModel::Simulated(t)
    };
    BlackBoxUdf::new(std::sync::Arc::new(f.clone()), cost)
}

/// Print a standard experiment header.
pub fn header(id: &str, title: &str, columns: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("(paper: Tran et al., VLDB 2013, §6; shapes comparable, absolute");
    println!(" numbers machine-dependent; see EXPERIMENTS.md)");
    println!("================================================================");
    println!("{columns}");
}

/// Format a duration in milliseconds with 3 significant digits.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udf_workloads::synthetic::PaperFunction;

    #[test]
    fn harness_smoke_test() {
        // A miniature end-to-end run of both evaluators on F1.
        let f = PaperFunction::F1.instantiate(1);
        let range = f.output_range();
        let acc = accuracy_with_eps(0.2, range);
        let inputs = standard_inputs(1, 3, 42);

        let cfg = OlgaproConfig::new(acc, range).unwrap();
        let gp = run_olgapro(&f, as_udf(&f, Duration::ZERO), cfg, &inputs, 1);
        assert!(gp.mean_error <= 0.25, "GP error {}", gp.mean_error);

        let mc = run_mc(&f, as_udf(&f, Duration::ZERO), acc, &inputs, 2);
        assert!(mc.mean_error <= 0.25, "MC error {}", mc.mean_error);
        assert!(mc.calls_per_input > gp.calls_per_input);
    }

    #[test]
    fn charged_cost_dominates_for_slow_udfs() {
        let f = PaperFunction::F1.instantiate(1);
        let range = f.output_range();
        let acc = accuracy_with_eps(0.2, range);
        let inputs = standard_inputs(1, 2, 7);
        let slow = run_mc(&f, as_udf(&f, Duration::from_millis(1)), acc, &inputs, 3);
        let fast = run_mc(&f, as_udf(&f, Duration::ZERO), acc, &inputs, 3);
        assert!(slow.time_per_input > fast.time_per_input * 5);
    }
}
