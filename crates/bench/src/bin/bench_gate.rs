//! `bench-gate`: diff the newest two `BENCH_*.json` trajectory snapshots
//! and exit nonzero on a >25% throughput regression on any axis.
//!
//! ```sh
//! cargo run --release -p udf-bench --bin bench-gate [dir]
//! ```
//!
//! `dir` defaults to the current directory (the repo root in CI, where
//! the snapshots live).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let dir = arg.as_deref().unwrap_or(".");
    match udf_bench::gate::run(Path::new(dir)) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passes() {
                println!("bench-gate: PASS");
                ExitCode::SUCCESS
            } else {
                println!(
                    "bench-gate: FAIL (axis below {:.0}% of previous rate)",
                    udf_bench::gate::REGRESSION_THRESHOLD * 100.0
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::FAILURE
        }
    }
}
