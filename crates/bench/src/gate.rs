//! The bench regression gate: diff the newest two `BENCH_*.json`
//! trajectory snapshots and fail on a throughput cliff.
//!
//! Each snapshot (written by `benches/trajectory.rs`) carries one entry
//! per perf axis. The gate reduces every axis to a single scalar *rate*
//! (work per second — higher is better), prints a per-axis trend table,
//! and exits nonzero when any axis regressed by more than
//! [`REGRESSION_THRESHOLD`] (new/old < 0.75). Axes present only in the
//! newer file report as `new` and never fail the gate — a PR adding an
//! axis must not be punished for it; axes that disappeared report as
//! `dropped` (also informational: snapshots are append-mostly but the
//! gate is a throughput check, not a schema check).
//!
//! CI runs the gate *enforcing* on the committed snapshots (the smoke
//! pass regenerates its own snapshot into /tmp, so noise never reaches
//! the diff); locally it is a one-command answer to "did this PR slow
//! anything down?".

use std::path::{Path, PathBuf};
use udf_obs::json::{parse, JsonValue};

/// Fail when `new_rate / old_rate` drops below this.
pub const REGRESSION_THRESHOLD: f64 = 0.75;

/// One axis row in the trend table.
#[derive(Debug, Clone)]
pub struct AxisTrend {
    /// Axis name (`stream_throughput`, …).
    pub axis: String,
    /// Old rate, when the axis exists in the older snapshot.
    pub old: Option<f64>,
    /// New rate, when the axis exists in the newer snapshot.
    pub new: Option<f64>,
}

impl AxisTrend {
    /// `new/old`, when both sides exist and the old rate is positive.
    pub fn ratio(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o > 0.0 => Some(n / o),
            _ => None,
        }
    }

    /// Did this axis regress past the threshold?
    pub fn regressed(&self) -> bool {
        self.ratio().is_some_and(|r| r < REGRESSION_THRESHOLD)
    }

    /// Status column: `ok` / `REGRESSED` / `new` / `dropped`.
    pub fn status(&self) -> &'static str {
        match (self.old, self.new) {
            (Some(_), Some(_)) => {
                if self.regressed() {
                    "REGRESSED"
                } else {
                    "ok"
                }
            }
            (None, Some(_)) => "new",
            (Some(_), None) => "dropped",
            (None, None) => "absent",
        }
    }
}

/// The diff of two snapshots plus everything the table needs.
#[derive(Debug)]
pub struct GateReport {
    /// Older snapshot's file name.
    pub old_name: String,
    /// Newer snapshot's file name.
    pub new_name: String,
    /// Per-axis trends, in the union of both snapshots' axis order.
    pub trends: Vec<AxisTrend>,
}

impl GateReport {
    /// True when no comparable axis regressed past the threshold.
    pub fn passes(&self) -> bool {
        !self.trends.iter().any(AxisTrend::regressed)
    }

    /// The human-readable trend table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "bench-gate: {} -> {} (fail below {:.0}% of old rate)\n",
            self.old_name,
            self.new_name,
            REGRESSION_THRESHOLD * 100.0
        );
        s.push_str(&format!(
            "{:<20} {:>14} {:>14} {:>7}  {}\n",
            "axis", "old rate/s", "new rate/s", "ratio", "status"
        ));
        for t in &self.trends {
            let fmt_rate = |r: Option<f64>| match r {
                Some(v) => format!("{v:.1}"),
                None => "-".to_string(),
            };
            let ratio = match t.ratio() {
                Some(r) => format!("{r:.2}"),
                None => "-".to_string(),
            };
            s.push_str(&format!(
                "{:<20} {:>14} {:>14} {:>7}  {}\n",
                t.axis,
                fmt_rate(t.old),
                fmt_rate(t.new),
                ratio,
                t.status()
            ));
        }
        s
    }
}

/// All `BENCH_<pr>.json` files under `dir`, sorted by PR number.
pub fn find_snapshots(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(pr) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            found.push((pr, entry.path()));
        }
    }
    found.sort_by_key(|(pr, _)| *pr);
    found.into_iter().map(|(_, p)| p).collect()
}

/// Reduce one axis payload to its scalar rate (work/second). `None` for
/// axes the gate does not know or malformed payloads — unknown axes are
/// skipped rather than failed, so the trajectory bench can grow.
fn axis_rate(axis: &str, v: &JsonValue) -> Option<f64> {
    let per_sec = |work: f64, ns: f64| (ns > 0.0).then(|| work / (ns / 1e9));
    // For array axes, report the best entry: the gate tracks the peak the
    // build can reach, not the mean over sweep parameters.
    let best = |rates: Vec<f64>| {
        rates
            .into_iter()
            .filter(|r| r.is_finite() && *r > 0.0)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.max(r)))
            })
    };
    match axis {
        "stream_throughput" => best(
            v.as_arr()?
                .iter()
                .filter_map(|e| e.get("tuples_per_sec")?.as_f64())
                .collect(),
        ),
        "gp_model_cap" => best(
            v.as_arr()?
                .iter()
                // The capped series is the steady-state configuration;
                // uncapped is the O(n³) contrast line, not a perf target.
                .filter(|e| {
                    e.get("series")
                        .and_then(JsonValue::as_str)
                        .is_some_and(|s| s.starts_with("capped"))
                })
                .filter_map(|e| per_sec(e.get("n")?.as_f64()?, e.get("elapsed_ns")?.as_f64()?))
                .collect(),
        ),
        "gp_fastpath" => best(
            v.as_arr()?
                .iter()
                .filter_map(|e| e.get("blocked_samples_per_sec")?.as_f64())
                .collect(),
        ),
        "join_pruning" => best(
            v.as_arr()?
                .iter()
                .filter(|e| {
                    e.get("series")
                        .and_then(JsonValue::as_str)
                        .is_some_and(|s| s == "pruned")
                })
                .filter_map(|e| {
                    per_sec(
                        e.get("pairs_evaluated")?.as_f64()?,
                        e.get("elapsed_ns")?.as_f64()?,
                    )
                })
                .collect(),
        ),
        "uql_overhead" => per_sec(v.get("n")?.as_f64()?, v.get("metrics_on_ns")?.as_f64()?),
        // Rows/second through the monitored query path (sampler running,
        // per-statement tick) — the continuous monitor's cost axis.
        "monitor_overhead" => per_sec(v.get("n")?.as_f64()?, v.get("monitor_on_ns")?.as_f64()?),
        // Steady-state prepared execution: rows per second through the
        // cached plan (the relation series; the join series' registry
        // dump is observational).
        "uql_prepared" => {
            let rel = v.get("relation")?;
            per_sec(rel.get("n")?.as_f64()?, rel.get("execute_ns")?.as_f64()?)
        }
        _ => None,
    }
}

/// Per-axis rates of one parsed snapshot, in source order.
fn snapshot_rates(doc: &JsonValue) -> Vec<(String, f64)> {
    let Some(JsonValue::Obj(members)) = doc.get("axes") else {
        return Vec::new();
    };
    members
        .iter()
        .filter_map(|(axis, payload)| axis_rate(axis, payload).map(|r| (axis.clone(), r)))
        .collect()
}

/// Diff two snapshot documents (older, newer).
pub fn diff(old_name: &str, old: &JsonValue, new_name: &str, new: &JsonValue) -> GateReport {
    let old_rates = snapshot_rates(old);
    let new_rates = snapshot_rates(new);
    let mut axes: Vec<String> = old_rates.iter().map(|(a, _)| a.clone()).collect();
    for (a, _) in &new_rates {
        if !axes.contains(a) {
            axes.push(a.clone());
        }
    }
    let lookup = |rates: &[(String, f64)], axis: &str| {
        rates.iter().find(|(a, _)| a == axis).map(|&(_, r)| r)
    };
    GateReport {
        old_name: old_name.to_string(),
        new_name: new_name.to_string(),
        trends: axes
            .into_iter()
            .map(|axis| AxisTrend {
                old: lookup(&old_rates, &axis),
                new: lookup(&new_rates, &axis),
                axis,
            })
            .collect(),
    }
}

/// Load and diff the newest two snapshots in `dir`.
///
/// # Errors
/// When fewer than two snapshots exist or either fails to parse.
pub fn run(dir: &Path) -> Result<GateReport, String> {
    let snaps = find_snapshots(dir);
    if snaps.len() < 2 {
        return Err(format!(
            "need two BENCH_<pr>.json snapshots in {}, found {}",
            dir.display(),
            snaps.len()
        ));
    }
    let old_path = &snaps[snaps.len() - 2];
    let new_path = &snaps[snaps.len() - 1];
    let read = |p: &Path| -> Result<JsonValue, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        parse(&text).map_err(|e| format!("{}: {e}", p.display()))
    };
    let name = |p: &Path| {
        p.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string())
    };
    Ok(diff(
        &name(old_path),
        &read(old_path)?,
        &name(new_path),
        &read(new_path)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// The committed trajectory (BENCH_6 → BENCH_7 at minimum) passes the
    /// gate: no axis lost more than 25% of its rate, and the table shows
    /// every shared axis.
    #[test]
    fn committed_trajectory_passes() {
        let report = run(&repo_root()).expect("repo carries >= 2 snapshots");
        let table = report.render();
        assert!(report.passes(), "committed snapshots regressed:\n{table}");
        for axis in [
            "stream_throughput",
            "gp_model_cap",
            "join_pruning",
            "uql_overhead",
            "monitor_overhead",
            "uql_prepared",
        ] {
            assert!(table.contains(axis), "{axis} missing:\n{table}");
        }
        assert!(table.contains("ok"), "status column:\n{table}");
    }

    /// A synthetic 60% throughput collapse on one axis fails the gate and
    /// is labelled in the table.
    #[test]
    fn injected_regression_fails() {
        let old = parse(
            r#"{"axes": {"stream_throughput": [{"tuples_per_sec": 1000.0}],
                         "uql_overhead": {"n": 512, "metrics_on_ns": 1000000}}}"#,
        )
        .unwrap();
        let new = parse(
            r#"{"axes": {"stream_throughput": [{"tuples_per_sec": 400.0}],
                         "uql_overhead": {"n": 512, "metrics_on_ns": 1000000}}}"#,
        )
        .unwrap();
        let report = diff("old.json", &old, "new.json", &new);
        assert!(!report.passes(), "60% collapse must fail");
        let table = report.render();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("0.40"), "ratio shown: {table}");
        let t = &report.trends[0];
        assert_eq!(t.axis, "stream_throughput");
        assert!(t.regressed());
    }

    /// A 20% dip stays inside the threshold.
    #[test]
    fn noise_inside_threshold_passes() {
        let old =
            parse(r#"{"axes": {"stream_throughput": [{"tuples_per_sec": 1000.0}]}}"#).unwrap();
        let new = parse(r#"{"axes": {"stream_throughput": [{"tuples_per_sec": 800.0}]}}"#).unwrap();
        assert!(diff("a", &old, "b", &new).passes());
    }

    /// Axes only in the newer snapshot report `new` and never fail; axes
    /// only in the older report `dropped` and never fail.
    #[test]
    fn axis_churn_is_informational() {
        let old = parse(r#"{"axes": {"gone": [{"tuples_per_sec": 1.0}], "stream_throughput": [{"tuples_per_sec": 10.0}]}}"#)
            .unwrap();
        let new = parse(r#"{"axes": {"stream_throughput": [{"tuples_per_sec": 10.0}], "gp_fastpath": [{"blocked_samples_per_sec": 5.0}]}}"#)
            .unwrap();
        let report = diff("a", &old, "b", &new);
        assert!(report.passes(), "churn alone must not fail");
        let table = report.render();
        assert!(table.contains("new"), "{table}");
        // "gone" is unknown to the gate on both sides, so it is skipped
        // entirely rather than reported as dropped.
        assert!(!table.contains("gone"), "{table}");
    }

    /// The series filters pick the right entries: capped GP and pruned
    /// join rows, peak entry per axis.
    #[test]
    fn axis_reduction_matches_fixtures() {
        let doc = parse(
            r#"{"axes": {
                "gp_model_cap": [
                    {"series": "capped16", "n": 64, "elapsed_ns": 64000000000},
                    {"series": "uncapped", "n": 64, "elapsed_ns": 1}
                ],
                "join_pruning": [
                    {"series": "naive", "n": 8, "elapsed_ns": 1, "pairs_evaluated": 100},
                    {"series": "pruned", "n": 8, "elapsed_ns": 2000000000, "pairs_evaluated": 50}
                ],
                "uql_prepared": {
                    "relation": {"n": 512, "one_shot_ns": 9, "execute_ns": 4000000000},
                    "join": {"n": 24, "warm_execute_ns": 1}
                },
                "monitor_overhead": {"n": 512, "monitor_on_ns": 2000000000,
                                     "monitor_off_ns": 1}}}"#,
        )
        .unwrap();
        let rates = snapshot_rates(&doc);
        let get = |axis: &str| rates.iter().find(|(a, _)| a == axis).map(|&(_, r)| r);
        // capped16: 64 rows / 64 s = 1/s (uncapped's absurd rate ignored).
        assert_eq!(get("gp_model_cap"), Some(1.0));
        // pruned: 50 pairs / 2 s = 25/s (naive ignored).
        assert_eq!(get("join_pruning"), Some(25.0));
        // prepared: 512 rows / 4 s through EXECUTE = 128/s (the join
        // series is observational).
        assert_eq!(get("uql_prepared"), Some(128.0));
        // monitored path: 512 rows / 2 s = 256/s (the off series is the
        // contrast line, not the rate).
        assert_eq!(get("monitor_overhead"), Some(256.0));
    }
}
