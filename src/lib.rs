//! # udf-uncertain
//!
//! A Rust implementation of **"Supporting User-Defined Functions on
//! Uncertain Data"** (Tran, Diao, Sutton, Liu — VLDB 2013).
//!
//! Given a black-box UDF `f` and an uncertain input tuple `X ~ p(x)`, the
//! library computes the distribution of `Y = f(X)` with user-specified
//! `(ε, δ)` accuracy under the discrepancy / λ-discrepancy / KS metrics,
//! using either direct Monte Carlo sampling or the paper's Gaussian-process
//! emulation pipeline (**OLGAPRO**) which can be up to two orders of
//! magnitude faster for expensive UDFs.
//!
//! ## Quickstart
//!
//! ```
//! use udf_uncertain::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A black-box UDF (imagine it is an expensive C program).
//! let udf = BlackBoxUdf::from_fn("halflife", 1, |x| (-(x[0]) / 3.0).exp());
//!
//! // An uncertain attribute: N(2.0, 0.3²).
//! let input = InputDistribution::diagonal_gaussian(&[(2.0, 0.3)]).unwrap();
//!
//! // Accuracy: with probability 0.95, λ-discrepancy below 0.2.
//! let acc = AccuracyRequirement::new(0.2, 0.05, 0.01, Metric::Discrepancy).unwrap();
//! let cfg = OlgaproConfig::new(acc, 1.0).unwrap();
//!
//! let mut olgapro = Olgapro::new(udf, cfg);
//! let mut rng = StdRng::seed_from_u64(1);
//! let out = olgapro.process(&input, &mut rng).unwrap();
//! assert!(out.error_bound() <= 0.2 + 1e-9);
//! let median = out.y_hat.quantile(0.5);
//! assert!((median - (-2.0f64 / 3.0).exp()).abs() < 0.1);
//! ```
//!
//! See the crate-level docs of [`udf_core`], [`udf_gp`], [`udf_prob`],
//! [`udf_query`], [`udf_join`], [`udf_workloads`], [`udf_stream`], and [`udf_lang`] (the
//! UQL declarative front-end) for the full API, and `EXPERIMENTS.md` for
//! the paper-reproduction harness.

pub use udf_core as core;
pub use udf_gp as gp;
pub use udf_join as join;
pub use udf_lang as lang;
pub use udf_linalg as linalg;
pub use udf_obs as obs;
pub use udf_prob as prob;
pub use udf_query as query;
pub use udf_spatial as spatial;
pub use udf_stream as stream;
pub use udf_workloads as workloads;

/// The items most applications need.
pub mod prelude {
    pub use udf_core::config::{AccuracyRequirement, Metric, OlgaproConfig, RetrainStrategy};
    pub use udf_core::filtering::{FilterDecision, Predicate};
    pub use udf_core::hybrid::{HybridChoice, HybridEvaluator};
    pub use udf_core::mc::McEvaluator;
    pub use udf_core::olgapro::Olgapro;
    pub use udf_core::output::{GpOutput, OutputDistribution};
    pub use udf_core::parallel::ParallelOlgapro;
    pub use udf_core::sched::{mix_seed, BatchOps, BatchScheduler, BatchStats, Verdict};
    pub use udf_core::udf::{BlackBoxUdf, CostModel, FnUdf, UdfFunction};
    pub use udf_join::{
        JoinExecutor, JoinOutput, JoinSpec, JoinStats, JoinedPair, OnCondition, Side,
    };
    pub use udf_lang::{run_uql, Context as UqlContext, LangError, QueryOutput};
    pub use udf_obs::{MetricsRegistry, Snapshot};
    pub use udf_prob::{Ecdf, InputDistribution, Normal, Univariate};
    pub use udf_query::{EvalStrategy, Executor, Relation, Schema, Tuple, UdfCall, Value};
    pub use udf_stream::{
        AstroSource, EngineConfig, EngineStats, QueryId, QuerySpec, Session, Source, StreamStats,
        StreamStrategy, SyntheticSource, VecSource,
    };
    pub use udf_workloads::{UdfCatalog, UdfEntry};
}
