//! Vendored, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build environment has no network access, so this workspace carries
//! the slice of `rand` the codebase actually uses: [`RngCore`],
//! [`SeedableRng`], [`Rng::gen_range`] over float/integer ranges, and a
//! deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. Upstream uses
//! ChaCha12, so seeded byte streams differ from upstream `rand`; everything
//! in this repository depends only on *determinism given a seed* and on
//! statistical quality, both of which xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create from a `u64`, expanding it with SplitMix64 (matching the
    /// upstream convention of deriving the full seed from the word).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Marker trait for types uniformly sampleable from a range.
pub trait SampleUniform: PartialOrd + Copy {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample from the range. Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleUniform for f64 {}
impl SampleUniform for f32 {}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        start + (end - start) * u
    }
}

macro_rules! impl_int_sample {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply with
/// a rejection step to remove modulo bias.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)` / a random `bool` / full-width integer.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_in_bounds_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let x: f64 = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 3];
        for _ in 0..1000 {
            seen_incl[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen_range(-1.0..1.0);
        assert!((-1.0..1.0).contains(&x));
        let i = dyn_rng.gen_range(0usize..10);
        assert!(i < 10);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
