//! Vendored, API-compatible subset of `proptest` (v1 surface).
//!
//! Supports the property-test style used across this workspace:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn prop((xs, ys) in my_strategy(), z in 0.5f64..4.0) { ... }
//! }
//! ```
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed and failures are *not* shrunk — the panic message carries
//! the case number so a failure is reproducible by rerunning the test.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection;

/// Runner configuration (`proptest::test_runner::Config` upstream).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The glob-import surface used by tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Deterministic per-(test, case) RNG used by the [`proptest!`] expansion.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name keeps seeds stable across runs and distinct
    // across properties.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x5eed_0ddb_a11a_d5e5)
}

/// Property-test entry point. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// `prop_assert!` — asserts, reporting through a panic (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!` — equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!` — inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        prop::collection::vec((-1.0f64..1.0, 0.0f64..2.0), 2..10)
            .prop_map(|v| v.into_iter().unzip())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuple_destructuring((xs, ys) in pairs(), scale in 0.5f64..2.0) {
            prop_assert_eq!(xs.len(), ys.len());
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
            for y in &ys {
                prop_assert!(*y >= 0.0 && *y * scale < 4.0);
            }
        }

        #[test]
        fn flat_map_works(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_per_test() {
        let mut a = crate::__case_rng("t", 3);
        let mut b = crate::__case_rng("t", 3);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
