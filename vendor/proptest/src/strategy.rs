//! Strategies: deterministic value generators parameterized by an RNG.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Use a generated value to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
