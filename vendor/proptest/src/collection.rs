//! Collection strategies (`prop::collection` upstream).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec()`]: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
