//! Vendored, API-compatible subset of `criterion` (v0.5 surface).
//!
//! Implements the benchmarking surface this workspace's `benches/` targets
//! use — groups, `BenchmarkId`, `Bencher::{iter, iter_with_setup}`,
//! throughput annotation, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a warm-up pass followed by timed batches within
//! the configured measurement window; the report is a compact
//! `name  time: <mean>` line (plus elements/sec when a throughput is set),
//! with no HTML output or statistical outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self, name, None, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration workload size.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.throughput, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Workload size per iteration, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements (e.g. tuples).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the display form of a benchmark id.
pub trait IntoBenchmarkId {
    /// The `group/function/param` suffix.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` only, rebuilding its input with `setup` (untimed)
    /// before every call.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    criterion: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: discover a per-sample iteration count that fits the window.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_up_start.elapsed() < criterion.warm_up_time {
        f(&mut b);
        per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        b.iters = (b.iters * 2).min(1 << 20);
    }

    let budget = criterion.measurement_time.as_secs_f64() / criterion.sample_size as f64;
    let iters_per_sample = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

    let mut samples = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {}/s", si(n as f64 / mean)),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}B/s", si(n as f64 / mean)),
        None => String::new(),
    };
    println!(
        "{name:<50} time: [{} {} {}]{rate}",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
        });
        g.finish();
    }
}
